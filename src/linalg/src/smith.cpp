#include "nahsp/linalg/smith.h"

#include "nahsp/common/check.h"

namespace nahsp::la {

namespace {

// Finds the position of a nonzero entry with minimal absolute value in
// the trailing submatrix starting at (k, k); returns false if all zero.
bool find_pivot(const IMat& d, std::size_t k, std::size_t& pr,
                std::size_t& pc) {
  bool found = false;
  i128 best = 0;
  for (std::size_t r = k; r < d.rows(); ++r)
    for (std::size_t c = k; c < d.cols(); ++c) {
      const i128 v = iabs(d.at(r, c));
      if (v != 0 && (!found || v < best)) {
        found = true;
        best = v;
        pr = r;
        pc = c;
      }
    }
  return found;
}

}  // namespace

Snf smith_normal_form(const IMat& a) {
  Snf res{a, IMat::identity(a.rows()), IMat::identity(a.cols())};
  IMat& d = res.d;
  IMat& u = res.u;
  IMat& v = res.v;
  const std::size_t k_max = std::min(a.rows(), a.cols());

  for (std::size_t k = 0; k < k_max; ++k) {
    std::size_t pr = k, pc = k;
    if (!find_pivot(d, k, pr, pc)) break;
    d.swap_rows(k, pr);
    u.swap_rows(k, pr);
    d.swap_cols(k, pc);
    v.swap_cols(k, pc);

    // Clear row and column k; restart whenever a reduction leaves a
    // remainder (the classic SNF inner loop).
    bool dirty = true;
    while (dirty) {
      dirty = false;
      for (std::size_t r = k + 1; r < d.rows(); ++r) {
        if (d.at(r, k) == 0) continue;
        const i128 q = d.at(r, k) / d.at(k, k);
        d.add_row(r, k, -q);
        u.add_row(r, k, -q);
        if (d.at(r, k) != 0) {
          d.swap_rows(k, r);
          u.swap_rows(k, r);
          dirty = true;
        }
      }
      for (std::size_t c = k + 1; c < d.cols(); ++c) {
        if (d.at(k, c) == 0) continue;
        const i128 q = d.at(k, c) / d.at(k, k);
        d.add_col(c, k, -q);
        v.add_col(c, k, -q);
        if (d.at(k, c) != 0) {
          d.swap_cols(k, c);
          v.swap_cols(k, c);
          dirty = true;
        }
      }
    }

    // Enforce the divisibility chain: if some trailing entry is not a
    // multiple of the pivot, fold its column into column k and redo.
    bool chain_ok = false;
    while (!chain_ok) {
      chain_ok = true;
      for (std::size_t r = k + 1; r < d.rows() && chain_ok; ++r)
        for (std::size_t c = k + 1; c < d.cols() && chain_ok; ++c) {
          if (d.at(r, c) % d.at(k, k) != 0) {
            d.add_col(k, c, 1);
            v.add_col(k, c, 1);
            // Re-clear row/column k after the fold.
            bool inner = true;
            while (inner) {
              inner = false;
              for (std::size_t rr = k + 1; rr < d.rows(); ++rr) {
                if (d.at(rr, k) == 0) continue;
                const i128 q = d.at(rr, k) / d.at(k, k);
                d.add_row(rr, k, -q);
                u.add_row(rr, k, -q);
                if (d.at(rr, k) != 0) {
                  d.swap_rows(k, rr);
                  u.swap_rows(k, rr);
                  inner = true;
                }
              }
              for (std::size_t cc = k + 1; cc < d.cols(); ++cc) {
                if (d.at(k, cc) == 0) continue;
                const i128 q = d.at(k, cc) / d.at(k, k);
                d.add_col(cc, k, -q);
                v.add_col(cc, k, -q);
                if (d.at(k, cc) != 0) {
                  d.swap_cols(k, cc);
                  v.swap_cols(k, cc);
                  inner = true;
                }
              }
            }
            chain_ok = false;
          }
        }
    }

    if (d.at(k, k) < 0) {
      d.negate_row(k);
      u.negate_row(k);
    }
  }
  return res;
}

std::vector<i128> invariant_factors(const IMat& a, bool drop_zeros) {
  const Snf s = smith_normal_form(a);
  std::vector<i128> out;
  const std::size_t k = std::min(a.rows(), a.cols());
  for (std::size_t i = 0; i < k; ++i) {
    const i128 v = s.d.at(i, i);
    if (v == 0 && drop_zeros) continue;
    out.push_back(v);
  }
  return out;
}

}  // namespace nahsp::la
