#include "nahsp/linalg/gf2.h"

#include <algorithm>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"

namespace nahsp::la {

BitMatrix::BitMatrix(int cols, std::vector<std::uint64_t> rows)
    : cols_(cols), rows_(std::move(rows)) {
  NAHSP_REQUIRE(cols >= 0 && cols <= 64, "BitMatrix supports <= 64 columns");
}

void BitMatrix::append_row(std::uint64_t r) {
  if (cols_ < 64) {
    NAHSP_REQUIRE((r >> cols_) == 0, "row has bits beyond column count");
  }
  rows_.push_back(r);
}

int BitMatrix::rref() {
  int rank = 0;
  for (int col = 0; col < cols_ && rank < static_cast<int>(rows_.size());
       ++col) {
    const std::uint64_t mask = 1ULL << col;
    // Find a pivot row at or below `rank` with this column set.
    std::size_t piv = rank;
    while (piv < rows_.size() && !(rows_[piv] & mask)) ++piv;
    if (piv == rows_.size()) continue;
    std::swap(rows_[rank], rows_[piv]);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r != static_cast<std::size_t>(rank) && (rows_[r] & mask))
        rows_[r] ^= rows_[rank];
    }
    ++rank;
  }
  rows_.resize(rank);  // drop zero rows
  return rank;
}

int BitMatrix::rank() const {
  BitMatrix copy = *this;
  return copy.rref();
}

bool BitMatrix::in_row_space(std::uint64_t v) const {
  BitMatrix copy = *this;
  copy.rref();
  for (const std::uint64_t r : copy.rows_) {
    if (r == 0) continue;
    const int pivot = std::countr_zero(r);
    if (v & (1ULL << pivot)) v ^= r;
  }
  return v == 0;
}

bool BitMatrix::extend_basis(std::uint64_t v) {
  // Reduce v against current echelon rows; insert if a residue remains.
  for (const std::uint64_t r : rows_) {
    const int pivot = std::countr_zero(r);
    if (v & (1ULL << pivot)) v ^= r;
  }
  if (v == 0) return false;
  rows_.push_back(v);
  // Re-echelonise to keep the invariant cheap for the next call.
  rref();
  return true;
}

std::vector<std::uint64_t> BitMatrix::null_space() const {
  BitMatrix copy = *this;
  copy.rref();
  // Record pivot columns.
  std::vector<int> pivot_col(copy.rows_.size());
  std::uint64_t pivot_mask = 0;
  for (std::size_t i = 0; i < copy.rows_.size(); ++i) {
    pivot_col[i] = std::countr_zero(copy.rows_[i]);
    pivot_mask |= 1ULL << pivot_col[i];
  }
  std::vector<std::uint64_t> basis;
  for (int free_col = 0; free_col < cols_; ++free_col) {
    if (pivot_mask & (1ULL << free_col)) continue;
    std::uint64_t v = 1ULL << free_col;
    // Back-substitute: pivot variable i takes <row_i restricted to free
    // columns> dotted with v.
    for (std::size_t i = 0; i < copy.rows_.size(); ++i) {
      if (copy.rows_[i] & (1ULL << free_col)) v |= 1ULL << pivot_col[i];
    }
    basis.push_back(v);
  }
  return basis;
}

std::optional<std::uint64_t> BitMatrix::solve_combination(
    std::uint64_t b) const {
  // Gaussian elimination on [rows | coefficient tags].
  NAHSP_REQUIRE(rows_.size() <= 64, "too many rows for coefficient mask");
  std::vector<std::uint64_t> work = rows_;
  std::vector<std::uint64_t> tag(rows_.size());
  for (std::size_t i = 0; i < tag.size(); ++i) tag[i] = 1ULL << i;
  std::uint64_t bt = 0;  // coefficients accumulated into b
  std::size_t rank = 0;
  for (int col = 0; col < cols_ && rank < work.size(); ++col) {
    const std::uint64_t mask = 1ULL << col;
    std::size_t piv = rank;
    while (piv < work.size() && !(work[piv] & mask)) ++piv;
    if (piv == work.size()) continue;
    std::swap(work[rank], work[piv]);
    std::swap(tag[rank], tag[piv]);
    for (std::size_t r = 0; r < work.size(); ++r) {
      if (r != rank && (work[r] & mask)) {
        work[r] ^= work[rank];
        tag[r] ^= tag[rank];
      }
    }
    if (b & mask) {
      b ^= work[rank];
      bt ^= tag[rank];
    }
    ++rank;
  }
  if (b != 0) return std::nullopt;
  return bt;
}

}  // namespace nahsp::la
