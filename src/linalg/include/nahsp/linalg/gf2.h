// Linear algebra over GF(2) with rows packed into 64-bit words.
//
// Used by the elementary-Abelian-2-subgroup algorithms (paper Section 6):
// subgroups of Z_2^k are GF(2) subspaces, so membership / intersection /
// span computations reduce to word-parallel row reduction. Restricted to
// dimension <= 64, which covers every instance in scope (and matches the
// 64-bit element codes used by the black-box layer).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

/// \file
/// \brief Word-parallel linear algebra over GF(2) (dimension <= 64) —
/// subgroups of Z_2^k as subspaces, for the Section 6 algorithms.

namespace nahsp::la {

/// A GF(2) matrix; each row is a bit-vector packed in a std::uint64_t,
/// bit i = column i. Number of columns tracked explicitly (<= 64).
class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(int cols) : cols_(cols) {}
  BitMatrix(int cols, std::vector<std::uint64_t> rows);

  /// \brief Column count (<= 64).
  int cols() const { return cols_; }
  /// \brief Row count.
  std::size_t rows() const { return rows_.size(); }
  /// \brief The i-th packed row (bit j = column j).
  std::uint64_t row(std::size_t i) const { return rows_[i]; }
  /// \brief All packed rows.
  const std::vector<std::uint64_t>& raw_rows() const { return rows_; }

  /// \brief Appends a packed row.
  void append_row(std::uint64_t r);

  /// Row-reduces in place to reduced row echelon form; returns rank.
  int rref();

  /// Rank without mutating (copies).
  int rank() const;

  /// True iff v is in the row space.
  bool in_row_space(std::uint64_t v) const;

  /// Appends v if it enlarges the row space; returns true if it did.
  /// Keeps the matrix in echelon form (used as an incremental basis).
  bool extend_basis(std::uint64_t v);

  /// Basis of the null space {x : for every row r, <r, x> == 0},
  /// one packed vector per basis element.
  std::vector<std::uint64_t> null_space() const;

  /// Solves x * A^T = b, i.e. finds x with sum of chosen rows == b.
  /// Returns the coefficient mask over the *current* rows, or nullopt.
  std::optional<std::uint64_t> solve_combination(std::uint64_t b) const;

 private:
  int cols_ = 0;
  std::vector<std::uint64_t> rows_;
};

}  // namespace nahsp::la
