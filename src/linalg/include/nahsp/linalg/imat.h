// Dense integer matrices with 128-bit entries.
//
// The matrices in this library are tiny (dozens of rows/columns — one row
// per QFT sample, one column per group generator), but the intermediate
// entries of Hermite/Smith reductions can grow well past 64 bits, so we
// store __int128 throughout and check for overflow at the boundaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// \brief Dense integer matrices with 128-bit entries — small
/// dimensions, but Hermite/Smith intermediates outgrow 64 bits.

namespace nahsp::la {

using i128 = __int128;
using i64 = std::int64_t;
using u64 = std::uint64_t;

/// Dense row-major integer matrix over Z with __int128 entries.
class IMat {
 public:
  IMat() = default;
  IMat(std::size_t rows, std::size_t cols);

  static IMat identity(std::size_t n);
  static IMat from_rows(const std::vector<std::vector<i64>>& rows);

  /// \brief Row count.
  std::size_t rows() const { return rows_; }
  /// \brief Column count.
  std::size_t cols() const { return cols_; }

  /// \brief Mutable entry access (row r, column c; unchecked).
  i128& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  /// \brief Entry access (row r, column c; unchecked).
  const i128& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  void swap_rows(std::size_t a, std::size_t b);
  void swap_cols(std::size_t a, std::size_t b);

  /// row[a] += k * row[b]
  void add_row(std::size_t a, std::size_t b, i128 k);
  /// col[a] += k * col[b]
  void add_col(std::size_t a, std::size_t b, i128 k);

  void negate_row(std::size_t r);
  void negate_col(std::size_t c);

  bool row_is_zero(std::size_t r) const;

  IMat transposed() const;
  IMat mul(const IMat& other) const;

  bool operator==(const IMat& other) const;

  /// Human-readable rendering for diagnostics.
  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<i128> data_;
};

/// Absolute value for __int128.
inline i128 iabs(i128 x) { return x < 0 ? -x : x; }

/// |det| == 1 check via fraction-free Gaussian elimination (Bareiss).
/// Used in tests to validate that reduction transforms are unimodular.
bool is_unimodular(const IMat& m);

}  // namespace nahsp::la
