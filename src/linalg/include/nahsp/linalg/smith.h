// Smith normal form over Z.
//
// Used for the Cheung–Mosca style decomposition of Abelian groups
// (paper Theorem 1): the relation lattice of a generating set, put in
// Smith form, reads off the cyclic invariant factors of the group.
#pragma once

#include <vector>

#include "nahsp/linalg/imat.h"

/// \file
/// \brief Smith normal form over Z — reads off the cyclic invariant
/// factors for the Cheung–Mosca decomposition (paper Theorem 1).

namespace nahsp::la {

/// U * A * V == D with U, V unimodular and D diagonal with
/// d1 | d2 | ... | dk >= 0.
struct Snf {
  IMat d;
  IMat u;
  IMat v;
};

/// Computes the Smith normal form of `a`.
Snf smith_normal_form(const IMat& a);

/// The diagonal invariant factors of `a` (excluding trailing zeros if
/// `drop_zeros`), each dividing the next.
std::vector<i128> invariant_factors(const IMat& a, bool drop_zeros = true);

}  // namespace nahsp::la
