// Row Hermite normal form with transformation matrix, and integer kernel
// bases derived from it.
//
// This is the workhorse of the Abelian-HSP post-processing: measured
// characters become rows of an integer matrix, and the hidden subgroup is
// the integer kernel of a related system (see congruence.h).
#pragma once

#include "nahsp/linalg/imat.h"

/// \file
/// \brief Row Hermite normal form with transformation matrix, and the
/// integer kernel bases the Abelian-HSP post-processing derives from it.

namespace nahsp::la {

/// Result of row-HNF reduction: U * A == H, U unimodular, H in row
/// echelon form with nonnegative pivots and reduced entries above pivots.
/// Zero rows of H are collected at the bottom.
struct RowHnf {
  IMat h;
  IMat u;
  std::size_t rank = 0;
};

/// Computes the row Hermite normal form of `a`.
RowHnf row_hnf(const IMat& a);

/// Basis of the left kernel {x : x * A == 0}, one basis vector per row.
/// Returns a matrix with (rows(A) - rank) rows.
IMat left_kernel(const IMat& a);

/// Basis of the (right) kernel {x : A * x == 0}, one basis vector per row
/// of the returned matrix (i.e. rows are kernel vectors of length cols(A)).
IMat kernel(const IMat& a);

}  // namespace nahsp::la
