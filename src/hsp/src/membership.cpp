#include "nahsp/hsp/membership.h"

#include "nahsp/common/cancel.h"
#include "nahsp/common/check.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/order.h"
#include "nahsp/numtheory/arith.h"

namespace nahsp::hsp {

namespace {

using grp::Code;

// Power tables h_i^a for a in [0, s_i) so a basis-state evaluation costs
// r multiplications instead of r exponentiations.
std::vector<std::vector<Code>> build_power_tables(
    const bb::BlackBoxGroup& g_oracle, const std::vector<Code>& elems,
    const std::vector<u64>& orders) {
  std::vector<std::vector<Code>> tables(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i) {
    tables[i].reserve(orders[i]);
    Code acc = g_oracle.id();
    for (u64 a = 0; a < orders[i]; ++a) {
      tables[i].push_back(acc);
      acc = g_oracle.mul(acc, elems[i]);
    }
  }
  return tables;
}

}  // namespace

MembershipResult constructive_membership(
    const bb::BlackBoxGroup& g_oracle, const std::vector<Code>& hs,
    Code g, const std::function<u64(Code)>& label, Rng& rng,
    const MembershipOptions& opts) {
  NAHSP_REQUIRE(!hs.empty(), "need at least one subgroup generator");
  u64 order_bound = opts.order_bound;
  if (order_bound == 0) {
    NAHSP_REQUIRE(g_oracle.encoding_bits() <= 20,
                  "pass an explicit order bound for wide encodings");
    order_bound = u64{1} << g_oracle.encoding_bits();
  }
  const u64 id_label = label(g_oracle.id());

  // Orders in the encoded group via Shor order finding on the labels.
  const std::size_t r = hs.size();
  std::vector<u64> orders(r + 1);
  std::vector<Code> elems = hs;
  elems.push_back(g);
  for (std::size_t i = 0; i <= r; ++i) {
    const Code x = elems[i];
    std::vector<Code> powers{g_oracle.id()};
    auto power_label = [&](u64 k) -> u64 {
      while (powers.size() <= k)
        powers.push_back(g_oracle.mul(powers.back(), x));
      return label(powers[k]);
    };
    auto verify = [&](u64 t) {
      return label(g_oracle.pow(x, t)) == id_label;
    };
    orders[i] = find_order_shor(power_label, verify, order_bound, rng,
                                &g_oracle.counter());
  }
  const u64 s = orders[r];  // order of g

  // phi(a_1..a_r, a) = h_1^{a_1} ... h_r^{a_r} g^{-a}; the g-powers table
  // stores inverse powers directly.
  std::vector<Code> inv_elems = hs;
  inv_elems.push_back(g_oracle.inv(g));
  const auto tables = build_power_tables(g_oracle, inv_elems, orders);

  auto product_of = [&](const la::AbVec& digits) -> Code {
    Code acc = tables[0][digits[0]];
    for (std::size_t i = 1; i <= r; ++i)
      acc = g_oracle.mul(acc, tables[i][digits[i]]);
    return acc;
  };

  qs::LabelFn domain_label = [&](const la::AbVec& digits) {
    return label(product_of(digits));
  };

  AbelianHspOptions hsp_opts;
  hsp_opts.membership_check = [&](const la::AbVec& digits) {
    return label(product_of(digits)) == id_label;
  };

  // One sampler across all attempts: its label cache and cached outcome
  // distribution are properties of the instance, so retries only redraw.
  const auto sampler = qs::make_coset_sampler(opts.sampler, orders,
                                              domain_label,
                                              &g_oracle.counter());
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    cancel_checkpoint();
    const AbelianHspResult kernel =
        solve_abelian_hsp(*sampler, rng, hsp_opts);

    // Fold the kernel generators with Bezout coefficients to reach the
    // gcd of the last coordinates.
    la::AbVec comb(r + 1, 0);
    u64 t = 0;
    for (const la::AbVec& gen : kernel.generators) {
      const u64 c = gen[r] % s == 0 ? (s == 1 ? 0 : gen[r] % s) : gen[r] % s;
      if (c == 0) continue;
      const nt::ExtGcd e = nt::ext_gcd(t, c);
      // new comb = x*comb + y*gen (componentwise, mod the moduli).
      la::AbVec next(r + 1);
      for (std::size_t i = 0; i <= r; ++i) {
        const u64 m = orders[i];
        const u64 xi =
            static_cast<u64>(((e.x % static_cast<nt::i128>(m)) + m) %
                             static_cast<nt::i128>(m));
        const u64 yi =
            static_cast<u64>(((e.y % static_cast<nt::i128>(m)) + m) %
                             static_cast<nt::i128>(m));
        next[i] = (nt::mulmod(xi, comb[i], m) + nt::mulmod(yi, gen[i], m)) % m;
      }
      comb = next;
      t = e.g;
    }

    MembershipResult res;
    res.orders = orders;
    if (s == 1) {
      // g has order 1 in the encoding: it is the encoded identity, the
      // empty product represents it.
      res.representable = true;
      res.exponents.assign(r, 0);
      return res;
    }
    if (t == 0 || nt::gcd(t, s) != 1) {
      // No kernel element with unit last coordinate: not representable.
      // (If the sampled kernel were too small we could wrongly reject,
      // but the kernel only ever *shrinks toward* the true kernel from
      // above, so rejection is reliable once stable.)
      res.representable = false;
      return res;
    }
    const u64 beta = *nt::invmod(comb[r] % s, s);
    res.exponents.resize(r);
    for (std::size_t i = 0; i < r; ++i)
      res.exponents[i] = nt::mulmod(beta, comb[i], orders[i]);
    // Verify the expression end to end.
    Code check = g_oracle.id();
    for (std::size_t i = 0; i < r; ++i)
      check = g_oracle.mul(check, g_oracle.pow(hs[i], res.exponents[i]));
    if (label(check) == label(g)) {
      res.representable = true;
      return res;
    }
    // Unlucky sampling produced a too-large kernel; try again.
  }
  throw retry_exhausted("constructive membership exhausted its attempts");
}

MembershipResult constructive_membership(const bb::BlackBoxGroup& g_oracle,
                                         const std::vector<Code>& hs,
                                         Code g, Rng& rng,
                                         const MembershipOptions& opts) {
  return constructive_membership(
      g_oracle, hs, g, [](Code c) { return c; }, rng, opts);
}

}  // namespace nahsp::hsp
