#include "nahsp/hsp/order.h"

#include <memory>
#include <unordered_map>

#include "nahsp/common/bits.h"
#include "nahsp/common/cancel.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/common/check.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/numtheory/arith.h"
#include "nahsp/numtheory/contfrac.h"
#include "nahsp/numtheory/factor.h"
#include "nahsp/qsim/qft.h"

namespace nahsp::hsp {

u64 find_order_shor(const std::function<u64(u64)>& power_label,
                    const std::function<bool(u64)>& verify, u64 order_bound,
                    Rng& rng, bb::QueryCounter* counter,
                    const ShorOptions& opts) {
  NAHSP_REQUIRE(order_bound >= 1, "order bound must be >= 1");
  if (order_bound == 1 || verify(1)) return 1;

  int t = opts.t_bits;
  if (t <= 0) t = 2 * bits_for(order_bound + 1) + 1;
  NAHSP_REQUIRE(t >= 2 && t <= 24, "Shor domain exceeds simulator budget");
  const u64 big_q = u64{1} << t;

  // Cache the power labels once; every circuit round reuses them (each
  // round still counts one superposition query).
  std::vector<u64> labels(big_q);
  for (u64 k = 0; k < big_q; ++k) labels[k] = power_label(k);
  if (counter != nullptr) counter->sim_basis_evals += big_q;

  qs::LabelFn domain_label = [&labels](const la::AbVec& digits) {
    return labels[digits[0]];
  };

  // One sampler for all rounds: its label cache (the full 2^t sweep) is
  // built once, instead of once per round. Shor's power-label function
  // is only approximately hiding on Z_{2^t} (the order rarely divides
  // 2^t), so the sparse engine's exact-hiding verification would reject
  // it — sparse/auto requests resolve to the dense mixed-radix engine.
  qs::SamplerChoice choice = opts.sampler;
  if (choice.backend == qs::SamplerBackend::kAuto && opts.use_qubit_circuit)
    choice.backend = qs::SamplerBackend::kQubit;
  if (choice.backend != qs::SamplerBackend::kQubit)
    choice.backend = qs::SamplerBackend::kMixedRadix;
  choice.qubit_approx_cutoff = opts.approx_cutoff;
  const auto sampler = qs::make_coset_sampler(
      choice, std::vector<u64>{big_q}, domain_label, counter);

  u64 combined = 1;  // lcm of the measured candidate denominators
  // Rounds are drawn through the batch API in geometrically growing
  // chunks: the first request is a single round (most instances succeed
  // immediately, keeping query counts unchanged), and each failure tops
  // up with a larger batch that the backend serves from its cached
  // outcome distribution. Success mid-chunk discards the rest of the
  // chunk, so the cap of 4 bounds the query-count overshoot vs the
  // one-by-one loop at +3 on the (rare) instances that need many rounds.
  int rounds_done = 0;
  std::size_t chunk = 1;
  bool grow = false;  // chunks 1, 1, 2, 4, 4, ...: most instances finish
                      // within two rounds, so growth starts one batch late
  while (rounds_done < opts.max_rounds) {
    cancel_checkpoint();
    const std::size_t k = std::min<std::size_t>(
        chunk, static_cast<std::size_t>(opts.max_rounds - rounds_done));
    for (const la::AbVec& yv : sampler->sample_characters(rng, k)) {
      ++rounds_done;
      const u64 y = yv[0];
      if (y == 0) continue;
      // y/Q ~ c/r: every convergent with denominator <= bound is a
      // candidate r/gcd(c, r).
      const auto convs = nt::convergents(y, big_q, order_bound);
      for (const auto& cv : convs) {
        if (cv.q == 0) continue;
        combined = nt::lcm(combined, cv.q);
        if (combined > order_bound) {
          // Overshoot can only come from a spurious convergent; restart
          // the combination from this round's best candidate.
          combined = cv.q <= order_bound ? cv.q : 1;
        }
      }
      if (combined > 1 && verify(combined)) {
        // Minimise: strip prime factors while the verification still holds.
        u64 r = combined;
        for (const auto& [p, e] : nt::factorize(r)) {
          (void)e;
          while (r % p == 0 && verify(r / p)) r /= p;
        }
        return r;
      }
    }
    if (grow) chunk = std::min<std::size_t>(chunk * 2, 4);
    grow = true;
  }
  throw retry_exhausted("Shor order finding exhausted its round budget");
}

u64 find_order_shor(const bb::BlackBoxGroup& g, grp::Code x, u64 order_bound,
                    Rng& rng, const ShorOptions& opts) {
  // Incremental power table avoids O(Q log Q) pow calls: label(k) = code
  // of x^k. Built lazily inside power_label via memo.
  std::vector<grp::Code> powers{g.id()};
  auto power_label = [&g, x, &powers](u64 k) -> u64 {
    while (powers.size() <= k) powers.push_back(g.mul(powers.back(), x));
    return powers[k];
  };
  auto verify = [&g, x](u64 r) { return g.is_id(g.pow(x, r)); };
  return find_order_shor(power_label, verify, order_bound, rng,
                         &g.counter(), opts);
}

u64 find_order_via_multiple(u64 m, const std::function<u64(u64)>& power_label,
                            Rng& rng, bb::QueryCounter* counter) {
  NAHSP_REQUIRE(m >= 1, "multiple must be >= 1");
  if (m == 1) return 1;
  // The function k -> label(g^k) on Z_m hides <r> where r is the order
  // (r divides m, so the function is well defined and exactly hiding).
  qs::LabelFn domain_label = [&power_label](const la::AbVec& digits) {
    return power_label(digits[0]);
  };
  const auto sampler =
      qs::make_coset_sampler({}, {m}, domain_label, counter);
  const AbelianHspResult res = solve_abelian_hsp(*sampler, rng);
  // <r> has order m / r; equivalently r = m / |H| = gcd of the
  // generators with m.
  u64 r = m;
  for (const la::AbVec& gen : res.generators) r = nt::gcd(r, gen[0]);
  NAHSP_CHECK(r >= 1 && m % r == 0, "period must divide the multiple");
  return r == 0 ? m : r;
}

u64 find_factor_order(const bb::BlackBoxGroup& g,
                      const std::vector<grp::Code>& n_gens, grp::Code x,
                      Rng& rng, const FactorOrderOptions& opts) {
  u64 bound = opts.order_bound;
  if (bound == 0) {
    NAHSP_REQUIRE(g.encoding_bits() <= 20,
                  "pass an explicit order bound for wide encodings");
    bound = u64{1} << g.encoding_bits();
  }
  // Canonical coset labels stand in for the |x^k N> states.
  std::function<u64(grp::Code)> coset_label = opts.coset_label;
  std::vector<grp::Code> n_elems;
  if (!coset_label) {
    n_elems = grp::enumerate_subgroup(g, n_gens, opts.n_enum_cap);
    coset_label = [&g, &n_elems](grp::Code a) -> u64 {
      grp::Code best = ~grp::Code{0};
      for (const grp::Code n : n_elems) best = std::min(best, g.mul(a, n));
      return best;
    };
  }
  const u64 id_coset = coset_label(g.id());
  std::vector<grp::Code> powers{g.id()};
  auto power_label = [&](u64 k) -> u64 {
    while (powers.size() <= k) powers.push_back(g.mul(powers.back(), x));
    return coset_label(powers[k]);
  };
  auto verify = [&](u64 t) { return coset_label(g.pow(x, t)) == id_coset; };
  ShorOptions so;
  so.sampler = opts.sampler;
  return find_order_shor(power_label, verify, bound, rng, &g.counter(), so);
}

}  // namespace nahsp::hsp
