#include "nahsp/hsp/small_commutator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "nahsp/common/cancel.h"
#include "nahsp/common/check.h"
#include "nahsp/groups/algorithms.h"

namespace nahsp::hsp {

namespace {
using grp::Code;
}

SmallCommutatorResult solve_hsp_small_commutator(
    const bb::BlackBoxGroup& g, const bb::HidingFunction& f, Rng& rng,
    const SmallCommutatorOptions& opts) {
  SmallCommutatorResult res;
  const u64 id_label = f.eval(g.id());

  // 1. Enumerate G' and H ∩ G'.
  const std::vector<Code> gprime_gens =
      grp::commutator_subgroup(g, opts.gprime_cap);
  const std::vector<Code> gprime =
      grp::enumerate_subgroup(g, gprime_gens, opts.gprime_cap);
  res.gprime_order = gprime.size();

  std::vector<Code> h_cap_gprime;
  for (const Code x : gprime) {
    if (f.eval(x) == id_label) h_cap_gprime.push_back(x);
  }
  res.h_cap_gprime_order = h_cap_gprime.size();

  // 2. F(x) = multiset {f(xg) : g in G'}, canonicalised to a dense label.
  // F costs |G'| f-queries per fresh point and hides HG'.
  auto canonical = std::make_shared<std::map<std::vector<u64>, u64>>();
  auto memo = std::make_shared<std::unordered_map<Code, u64>>();
  auto f_big = [&g, &f, gprime, canonical, memo](Code x) -> u64 {
    const auto it = memo->find(x);
    if (it != memo->end()) return it->second;
    std::vector<u64> values;
    values.reserve(gprime.size());
    // Uncounted: bulk evaluations of F realise superposition queries;
    // classical F-queries are counted by the LambdaHider wrapper.
    for (const Code c : gprime)
      values.push_back(f.eval_uncounted(g.mul(x, c)));
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    const auto [cit, fresh] =
        canonical->emplace(std::move(values), canonical->size());
    (void)fresh;
    memo->emplace(x, cit->second);
    return cit->second;
  };
  bb::LambdaHider big_hider(f_big,
                            std::shared_ptr<bb::QueryCounter>(
                                std::shared_ptr<void>{}, &g.counter()));

  // 3. Generators of HG' (normal; G/HG' Abelian).
  NormalHspOptions nopts;
  nopts.order_bound = opts.order_bound;
  nopts.max_attempts = opts.max_attempts;
  nopts.closure_cap = opts.closure_cap;
  nopts.sampler = opts.sampler;
  const NormalHspResult hgp =
      find_hidden_normal_subgroup(g, big_hider, rng, nopts);
  NAHSP_CHECK(hgp.abelian_factor,
              "G/HG' must be Abelian when G' <= HG'");

  // 4. For each generator x of HG', pick an element of xG' ∩ H.
  std::vector<Code> collected = h_cap_gprime;
  for (const Code x : hgp.generators) {
    cancel_checkpoint();
    bool found = false;
    for (const Code c : gprime) {
      const Code cand = g.mul(x, c);
      if (f.eval(cand) == id_label) {
        collected.push_back(cand);
        found = true;
        break;
      }
    }
    NAHSP_ORACLE_CHECK(found,
                       "coset of a HG' generator contains no H element");
  }

  // 5. H = <collected>; drop identity duplicates for tidiness.
  std::sort(collected.begin(), collected.end());
  collected.erase(std::unique(collected.begin(), collected.end()),
                  collected.end());
  std::erase_if(collected, [&g](Code c) { return g.is_id(c); });
  res.generators = std::move(collected);
  return res;
}

}  // namespace nahsp::hsp
