#include "nahsp/hsp/presentation.h"

#include <deque>
#include <unordered_map>

#include "nahsp/common/cancel.h"
#include "nahsp/common/check.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/order.h"

namespace nahsp::hsp {

namespace {
using grp::Code;
}

bool factor_group_is_abelian(const bb::BlackBoxGroup& g,
                             const std::function<u64(Code)>& label) {
  const u64 id_label = label(g.id());
  const std::vector<Code> gens = g.generators();
  for (std::size_t i = 0; i < gens.size(); ++i)
    for (std::size_t j = i + 1; j < gens.size(); ++j) {
      if (label(g.commutator(gens[i], gens[j])) != id_label) return false;
    }
  return true;
}

std::vector<Code> abelian_factor_relators(
    const bb::BlackBoxGroup& g, const std::function<u64(Code)>& label,
    Rng& rng, const AbelianFactorOptions& opts) {
  const std::vector<Code> gens = g.generators();
  NAHSP_REQUIRE(!gens.empty(), "group has no generators");
  const u64 id_label = label(g.id());

  u64 order_bound = opts.order_bound;
  if (order_bound == 0) {
    NAHSP_REQUIRE(g.encoding_bits() <= 20,
                  "pass an explicit order bound for wide encodings");
    order_bound = u64{1} << g.encoding_bits();
  }

  // Orders of the generator images in G/N.
  const std::size_t r = gens.size();
  std::vector<u64> orders(r);
  for (std::size_t i = 0; i < r; ++i) {
    const Code x = gens[i];
    std::vector<Code> powers{g.id()};
    auto power_label = [&](u64 k) -> u64 {
      while (powers.size() <= k) powers.push_back(g.mul(powers.back(), x));
      return label(powers[k]);
    };
    auto verify = [&](u64 t) { return label(g.pow(x, t)) == id_label; };
    orders[i] =
        find_order_shor(power_label, verify, order_bound, rng, &g.counter());
  }

  // Degenerate quotient: every generator has order 1 in G/N (verified
  // above: label(g_i) == id_label), so N = G and the sampling domain is
  // a single point — too small for the qubit backend to even encode.
  // Skip the quantum stage and return the generators themselves.
  bool trivial_quotient = true;
  for (const u64 o : orders) trivial_quotient = trivial_quotient && (o == 1);
  if (trivial_quotient) {
    std::vector<Code> relators;
    for (const Code x : gens)
      if (!g.is_id(x)) relators.push_back(x);
    return relators;
  }

  // Power tables for fast evaluation of phi over the domain.
  std::vector<std::vector<Code>> tables(r);
  for (std::size_t i = 0; i < r; ++i) {
    Code acc = g.id();
    tables[i].reserve(orders[i]);
    for (u64 a = 0; a < orders[i]; ++a) {
      tables[i].push_back(acc);
      acc = g.mul(acc, gens[i]);
    }
  }
  auto product_of = [&](const la::AbVec& digits) -> Code {
    Code acc = tables[0][digits[0]];
    for (std::size_t i = 1; i < r; ++i)
      acc = g.mul(acc, tables[i][digits[i]]);
    return acc;
  };

  qs::LabelFn domain_label = [&](const la::AbVec& digits) {
    return label(product_of(digits));
  };
  AbelianHspOptions hsp_opts;
  hsp_opts.membership_check = [&](const la::AbVec& digits) {
    return label(product_of(digits)) == id_label;
  };

  // One sampler across all attempts (hidden-normal-subgroup hot path):
  // the label cache and cached outcome distribution survive retries.
  const auto sampler = qs::make_coset_sampler(opts.sampler, orders,
                                              domain_label, &g.counter());
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    cancel_checkpoint();
    const AbelianHspResult kernel =
        solve_abelian_hsp(*sampler, rng, hsp_opts);

    std::vector<Code> relators;
    bool all_in_n = true;
    // Kernel basis vectors: w = prod g_i^{a_i} lies in N.
    for (const la::AbVec& a : kernel.generators) {
      const Code w = product_of(a);
      if (label(w) != id_label) {
        all_in_n = false;
        break;
      }
      if (!g.is_id(w)) relators.push_back(w);
    }
    if (!all_in_n) continue;  // too-large sampled kernel; retry
    // Power relators g_i^{s_i} (s_i is the order in G/N, so these lie in
    // N as well; they may be absent from the sampled basis reduced mod
    // the moduli, so add them explicitly).
    for (std::size_t i = 0; i < r; ++i) {
      const Code w = g.mul(tables[i][orders[i] - 1], gens[i]);  // g_i^{s_i}
      NAHSP_ORACLE_CHECK(label(w) == id_label,
                         "computed order is not an order in G/N");
      if (!g.is_id(w)) relators.push_back(w);
    }
    // Commutator relators (G/N Abelian).
    for (std::size_t i = 0; i < r; ++i)
      for (std::size_t j = i + 1; j < r; ++j) {
        const Code w = g.commutator(gens[i], gens[j]);
        NAHSP_ORACLE_CHECK(label(w) == id_label,
                           "factor group is not Abelian");
        if (!g.is_id(w)) relators.push_back(w);
      }
    return relators;
  }
  throw retry_exhausted("abelian_factor_relators exhausted its attempts");
}

std::vector<Code> schreier_generators(const bb::BlackBoxGroup& g,
                                      const std::function<u64(Code)>& label,
                                      const SchreierOptions& opts) {
  const std::vector<Code> gens = g.generators();
  const u64 id_label = label(g.id());

  // BFS transversal of the left cosets of N keyed by label. The walk
  // multiplies on the LEFT: left multiplication acts on left cosets
  // (s * (gN) = (sg)N is well defined), which is what makes the Schreier
  // elements generate N directly — any n in N written as a generator
  // word s_k ... s_1 telescopes into a product of the collected
  // elements. (A right-multiplication walk would only generate N up to
  // normal closure.)
  std::unordered_map<u64, Code> rep;
  std::deque<Code> frontier;
  rep.emplace(id_label, g.id());
  frontier.push_back(g.id());
  std::vector<Code> subgroup_gens;
  std::vector<Code> step = gens;
  for (const Code s : gens) step.push_back(g.inv(s));
  while (!frontier.empty()) {
    const Code v = frontier.front();
    frontier.pop_front();
    for (const Code s : step) {
      const Code x = g.mul(s, v);
      const u64 lab = label(x);
      const auto it = rep.find(lab);
      if (it == rep.end()) {
        NAHSP_REQUIRE(rep.size() < opts.factor_cap,
                      "factor group exceeds the Schreier coset cap");
        rep.emplace(lab, x);
        frontier.push_back(x);
      } else {
        // Schreier element rep(sv)^{-1} * (s v) lies in N.
        const Code n = g.mul(g.inv(it->second), x);
        NAHSP_ORACLE_CHECK(label(n) == id_label,
                           "labels are not constant on cosets");
        if (!g.is_id(n)) subgroup_gens.push_back(n);
      }
    }
  }
  return subgroup_gens;
}

}  // namespace nahsp::hsp
