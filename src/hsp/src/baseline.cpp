#include "nahsp/hsp/baseline.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"
#include "nahsp/groups/algorithms.h"

namespace nahsp::hsp {

namespace {
using grp::Code;
}

std::vector<Code> classical_bruteforce_hsp(const bb::BlackBoxGroup& g,
                                           const bb::HidingFunction& f,
                                           std::size_t cap) {
  const u64 id_label = f.eval(g.id());
  const std::vector<Code> elems = grp::enumerate_group(g, cap);
  std::vector<Code> h_elems;
  for (const Code x : elems) {
    if (f.eval(x) == id_label) h_elems.push_back(x);
  }
  // Greedy generating-set reduction: add elements that enlarge the
  // generated subgroup.
  std::vector<Code> gens;
  std::vector<Code> span{g.id()};
  for (const Code x : h_elems) {
    if (std::binary_search(span.begin(), span.end(), x)) continue;
    gens.push_back(x);
    span = grp::enumerate_subgroup(g, gens, cap);
    if (span.size() == h_elems.size()) break;
  }
  return gens;
}

EttingerHoyerResult dihedral_ettinger_hoyer(const grp::DihedralGroup& d,
                                            const bb::HidingFunction& f,
                                            Rng& rng, int samples) {
  const u64 n = d.n();
  NAHSP_REQUIRE(n >= 2, "dihedral baseline needs n >= 2");
  if (samples <= 0) samples = 8 * bits_for(n) + 16;

  // Identify the hidden slope via f itself only through the sampling
  // distribution: the Ettinger–Høyer measurement on the coset state of
  // H = {1, x^d y} returns k with probability proportional to
  // cos^2(pi k d / n). We realise the exact distribution by locating d
  // with two classical queries (instance realisation, as with the other
  // samplers: the distribution, not d, is what the solver sees).
  const u64 id_label = f.eval_uncounted(d.id());
  u64 d_true = n;  // slope of the hidden reflection
  for (u64 r = 0; r < n; ++r) {
    if (f.eval_uncounted(d.make(r, true)) == id_label) {
      d_true = r;
      break;
    }
  }
  NAHSP_REQUIRE(d_true < n,
                "hidden subgroup contains no reflection; EH baseline "
                "expects H = {1, x^d y}");

  // Draw the quantum samples.
  std::vector<u64> draws;
  draws.reserve(samples);
  std::vector<double> probs(n);
  double total = 0.0;
  for (u64 k = 0; k < n; ++k) {
    const double c = std::cos(std::numbers::pi * static_cast<double>(k) *
                              static_cast<double>(d_true) /
                              static_cast<double>(n));
    probs[k] = c * c;
    total += probs[k];
  }
  for (int s = 0; s < samples; ++s) {
    f.counter().quantum_queries += 1;  // one coset-state preparation each
    const double target = rng.uniform01() * total;
    double acc = 0.0;
    u64 k = n - 1;
    for (u64 i = 0; i < n; ++i) {
      acc += probs[i];
      if (acc >= target) {
        k = i;
        break;
      }
    }
    draws.push_back(k);
  }

  // Exponential post-processing: likelihood over all n candidate slopes.
  // The cos^2 statistics cannot distinguish d from n - d (the two
  // distributions coincide), so candidates are ranked by likelihood and
  // confirmed with one classical query each — still O(log n) quantum
  // samples and Theta(n) classical scan work, the paper's point.
  EttingerHoyerResult res;
  res.quantum_samples = samples;
  std::vector<std::pair<double, u64>> ranked;
  ranked.reserve(n);
  for (u64 cand = 0; cand < n; ++cand) {
    double ll = 0.0;
    for (const u64 k : draws) {
      const double c = std::cos(std::numbers::pi * static_cast<double>(k) *
                                static_cast<double>(cand) /
                                static_cast<double>(n));
      ll += std::log(std::max(c * c, 1e-12));
    }
    ranked.emplace_back(-ll, cand);
    ++res.candidates_scanned;
  }
  std::sort(ranked.begin(), ranked.end());
  for (const auto& [neg_ll, cand] : ranked) {
    if (f.eval(d.make(cand, true)) == id_label) {
      res.generators = {d.make(cand, true)};
      return res;
    }
  }
  throw retry_exhausted("Ettinger-Hoyer found no verifying slope");
}

}  // namespace nahsp::hsp
