#include "nahsp/hsp/scenario.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "nahsp/common/check.h"
#include "nahsp/common/fingerprint.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/groups/quaternion.h"
#include "nahsp/hsp/generator.h"
#include "nahsp/numtheory/arith.h"
#include "scenario_detail.h"

namespace nahsp::hsp {

namespace {

using grp::Code;

// Shared with generator.cpp (the random-instance families) through
// src/hsp/src/scenario_detail.h.
using detail::alt_mask;
using detail::gf2_semidirect_options;
using detail::make_built;
using detail::ParamReader;
using detail::scenario_fail;

// ---------------------------------------------------------------- dihedral

ScenarioFamily dihedral_family() {
  ScenarioFamily f;
  f.name = "dihedral";
  f.summary =
      "D_n with the hidden rotation subgroup <x^k> (normal; Theorem 8 "
      "route, no Fourier transform on G)";
  f.theorem = "Theorem 8 (hidden normal subgroup)";
  f.params = {
      {"n", 12, 2, 1024, "order parameter: |D_n| = 2n"},
      {"k", 3, 0, 1024,
       "hidden subgroup is <x^k> (k=0 plants the trivial subgroup)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 n = get("n");
    const u64 k = get("k");
    auto g = std::make_shared<grp::DihedralGroup>(n);
    std::vector<Code> hidden;
    if (k % n != 0) hidden.push_back(g->make(k % n, false));
    AutoOptions o;
    // Element orders in D_n divide n or equal 2, so n bounds them all
    // (and keeps the Shor domain within the simulator budget at n=1024).
    o.order_bound = n;
    o.gprime_cap = 1;  // skip the Theorem 11 probe: exercise Theorem 8
    return make_built(std::move(g), std::move(hidden), o, std::move(get));
  };
  return f;
}

// --------------------------------------------------------------- symmetric

ScenarioFamily symmetric_family() {
  ScenarioFamily f;
  f.name = "symmetric";
  f.summary =
      "S_d with a planted normal subgroup (trivial, A_d, S_d, or V_4), "
      "hidden via Schreier-Sims coset labels";
  f.theorem = "Theorem 8 (hidden normal subgroup)";
  f.params = {
      {"d", 4, 3, 6, "degree of the symmetric group"},
      {"hidden", 1, 0, 3,
       "planted subgroup: 0 = trivial, 1 = A_d, 2 = S_d, 3 = V_4 "
       "(d = 4 only)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 d = get("d");
    const u64 which = get("hidden");
    auto g = grp::symmetric_group(static_cast<int>(d));
    std::vector<Code> hidden;
    switch (which) {
      case 0:
        break;
      case 1:
        for (int i = 2; i < static_cast<int>(d); ++i)
          hidden.push_back(g->encode(
              grp::perm_from_cycles(static_cast<int>(d), {{0, 1, i}})));
        break;
      case 2:
        hidden = g->generators();
        break;
      case 3:
        if (d != 4)
          scenario_fail("symmetric", "hidden=3 (V_4) requires d=4");
        hidden = {g->encode(grp::perm_from_cycles(4, {{0, 1}, {2, 3}})),
                  g->encode(grp::perm_from_cycles(4, {{0, 2}, {1, 3}}))};
        break;
      default:
        break;
    }
    AutoOptions o;
    u64 fact = 1;
    for (u64 i = 2; i <= d; ++i) fact *= i;
    o.order_bound = fact;
    o.gprime_cap = 1;  // A_d is large relative to caps anyway; be explicit
    BuiltScenario b;
    b.group_name = g->name();
    b.group_order = g->order();
    b.params = std::move(get.resolved);
    b.options = o;
    b.instance = bb::make_perm_instance(g, std::move(hidden));
    return b;
  };
  return f;
}

// -------------------------------------------------------------- heisenberg

ScenarioFamily heisenberg_family() {
  ScenarioFamily f;
  f.name = "heisenberg";
  f.summary =
      "Heisenberg group H(p, n) with the hidden centre Z(G) = G' "
      "(order p)";
  f.theorem = "Theorem 11 + Corollary 12 (small commutator subgroup)";
  f.params = {
      {"p", 5, 3, 13, "odd prime modulus"},
      {"n", 1, 1, 2, "rank: |G| = p^(2n+1)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 p = get("p");
    const u64 n = get("n");
    if (!nt::is_prime(p) || p % 2 == 0)
      scenario_fail("heisenberg", "p must be an odd prime");
    auto g = std::make_shared<grp::HeisenbergGroup>(p, static_cast<int>(n));
    std::vector<Code> hidden{g->central_generator()};
    AutoOptions o;
    // H(p, n) has exponent p for odd p: every element order divides p.
    o.order_bound = p;
    return make_built(std::move(g), std::move(hidden), o, std::move(get));
  };
  return f;
}

// ------------------------------------------------------------ extraspecial

ScenarioFamily extraspecial_family() {
  ScenarioFamily f;
  f.name = "extraspecial";
  f.summary =
      "extraspecial group Heis(p) with a planted non-normal subgroup "
      "<(ha, hb, 0)> (optionally extended by the centre)";
  f.theorem = "Theorem 11 + Corollary 12 (small commutator subgroup)";
  f.params = {
      {"p", 5, 3, 13, "odd prime: |G| = p^3"},
      {"ha", 2, 0, 12, "a-digit of the planted generator (must be < p)"},
      {"hb", 3, 0, 12, "b-digit of the planted generator (must be < p)"},
      {"with_centre", 0, 0, 1,
       "1 adds the central generator (plants a normal subgroup)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 p = get("p");
    const u64 ha = get("ha");
    const u64 hb = get("hb");
    const u64 with_centre = get("with_centre");
    if (!nt::is_prime(p) || p % 2 == 0)
      scenario_fail("extraspecial", "p must be an odd prime");
    if (ha >= p || hb >= p)
      scenario_fail("extraspecial", "ha and hb must be < p");
    auto g = std::make_shared<grp::HeisenbergGroup>(p, 1);
    std::vector<Code> hidden;
    if (ha != 0 || hb != 0) hidden.push_back(g->make({ha}, {hb}, 0));
    if (with_centre != 0) hidden.push_back(g->central_generator());
    AutoOptions o;
    // Heis(p) has exponent p for odd p: every element order divides p.
    o.order_bound = p;
    return make_built(std::move(g), std::move(hidden), o, std::move(get));
  };
  return f;
}

// -------------------------------------------------------------- quaternion

ScenarioFamily quaternion_family() {
  ScenarioFamily f;
  f.name = "quaternion";
  f.summary =
      "generalized quaternion group Q_2^k with a planted subgroup "
      "(<b>, the centre, or <a>) - the b^2 != 1 twist dihedral groups lack";
  f.theorem = "Theorem 11 (small commutator subgroup)";
  f.params = {
      {"order", 16, 8, 512, "group order; must be a power of two >= 8"},
      {"hidden", 0, 0, 2,
       "planted subgroup: 0 = <b>, 1 = centre {1, a^(n/2)}, 2 = <a>"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 order = get("order");
    const u64 which = get("hidden");
    if ((order & (order - 1)) != 0)
      scenario_fail("quaternion", "order must be a power of two");
    auto g = std::make_shared<grp::QuaternionGroup>(order);
    std::vector<Code> hidden;
    switch (which) {
      case 0: hidden = {g->make(0, true)}; break;
      case 1: hidden = {g->central_involution()}; break;
      default: hidden = {g->make(1, false)}; break;
    }
    AutoOptions o;
    o.order_bound = order;
    return make_built(std::move(g), std::move(hidden), o, std::move(get));
  };
  return f;
}

// ------------------------------------------------------------------ wreath

ScenarioFamily wreath_family() {
  ScenarioFamily f;
  f.name = "wreath";
  f.summary =
      "Rotteler-Beth wreath product Z_2^k wr Z_2 with a planted hidden "
      "subgroup, solved through the cyclic-factor route";
  f.theorem = "Theorem 13 (elementary Abelian normal 2-subgroup)";
  f.params = {
      {"k", 3, 1, 10, "block width: |G| = 2^(2k+1)"},
      {"hidden", 2, 0, 3,
       "planted subgroup: 0 = inside N, 1 = the swap, 2 = shifted swap, "
       "3 = rank-2 mixed"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 k = get("k");
    const u64 which = get("hidden");
    auto g = grp::wreath_z2k_z2(static_cast<int>(k));
    const u64 ones = (u64{1} << (2 * k)) - 1;
    const u64 alt = alt_mask(2 * k);
    std::vector<Code> hidden;
    switch (which) {
      case 0: hidden = {g->make((u64{1} << k) - 1, 0)}; break;
      case 1: hidden = {g->make(0, 1)}; break;
      case 2: hidden = {g->make(alt, 1)}; break;
      default: hidden = {g->make(alt, 1), g->make(ones, 0)}; break;
    }
    AutoOptions o = gf2_semidirect_options(g);
    return make_built(std::move(g), std::move(hidden), o, std::move(get));
  };
  return f;
}

// --------------------------------------------------------------- gf2affine

ScenarioFamily gf2affine_family() {
  ScenarioFamily f;
  f.name = "gf2affine";
  f.summary =
      "the paper's Section 6 GF(2) matrix-group family Z_2^k x| <M> "
      "(M a companion matrix), cyclic-factor route";
  f.theorem = "Theorem 13 (elementary Abelian normal 2-subgroup)";
  f.params = {
      {"k", 4, 2, 10, "dimension of N = Z_2^k"},
      {"coeffs", 3, 1, 1023,
       "coefficient mask of the companion matrix M (bit 0 must be set "
       "for invertibility; must fit in k bits)"},
      {"hidden", 0, 0, 3,
       "planted subgroup: 0 = inside N, 1 = full complement <(0,1)>, "
       "2 = proper complement subgroup, 3 = rank-2 mixed"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 k = get("k");
    const u64 coeffs = get("coeffs");
    const u64 which = get("hidden");
    if ((coeffs & 1) == 0)
      scenario_fail("gf2affine", "coeffs must have bit 0 set (M invertible)");
    if (coeffs >> k != 0)
      scenario_fail("gf2affine", "coeffs must fit in k bits");
    auto g = grp::paper_matrix_group(
        grp::GF2Mat::companion(static_cast<int>(k), coeffs));
    const u64 m = g->m();
    const u64 ones = (u64{1} << k) - 1;
    const u64 alt = alt_mask(k);
    std::vector<Code> hidden;
    switch (which) {
      case 0: hidden = {g->make(alt, 0)}; break;
      case 1: hidden = {g->make(0, 1 % m)}; break;
      case 2: {
        // <(0, m/q)> for the smallest prime factor q of m: a proper
        // subgroup of the cyclic complement (the whole complement when
        // m is prime).
        const auto divs = nt::divisors(m);
        const u64 q = divs.size() > 1 ? divs[1] : 1;
        hidden = {g->make(0, (m / q) % m)};
        break;
      }
      default: hidden = {g->make(ones, 1 % m), g->make(alt ^ ones, 0)}; break;
    }
    AutoOptions o = gf2_semidirect_options(g);
    return make_built(std::move(g), std::move(hidden), o, std::move(get));
  };
  return f;
}

// ------------------------------------------------------------ elem_abelian2

ScenarioFamily elem_abelian2_family() {
  ScenarioFamily f;
  f.name = "elem_abelian2";
  f.summary =
      "elementary Abelian G = Z_2^k with a hidden subspace, run through "
      "the Theorem 13 machinery with N = G";
  f.theorem = "Theorem 13 (elementary Abelian normal 2-subgroup)";
  f.params = {
      {"k", 6, 1, 20, "dimension: |G| = 2^k"},
      {"hidden", 1, 0, 3,
       "planted subspace: 0 = <all-ones>, 1 = rank 2 (all-ones + "
       "alternating), 2 = trivial, 3 = the whole group"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 k = get("k");
    const u64 which = get("hidden");
    auto g = grp::elementary_abelian(2, static_cast<int>(k));
    const Code ones = (u64{1} << k) - 1;
    const Code alt = alt_mask(k);
    std::vector<Code> hidden;
    switch (which) {
      case 0: hidden = {ones}; break;
      case 1:
        hidden = alt == ones ? std::vector<Code>{ones}
                             : std::vector<Code>{ones, alt};
        break;
      case 2: break;
      default: hidden = g->generators(); break;
    }
    AutoOptions o;
    o.order_bound = 2;
    o.elem_abelian_2_subgroup = g->generators();
    o.elem_abelian_2_options.factor_order_bound = 1;
    o.elem_abelian_2_options.n_membership = [](Code) { return true; };
    o.elem_abelian_2_options.coset_label = [](Code) { return u64{0}; };
    return make_built(std::move(g), std::move(hidden), o, std::move(get));
  };
  return f;
}

// ----------------------------------------------------------------- abelian

ScenarioFamily abelian_family() {
  ScenarioFamily f;
  f.name = "abelian";
  f.summary =
      "Z_m1 x Z_m2 with the hidden cyclic subgroup <(h1, h2)> - the "
      "Fourier-sampling substrate every other route builds on";
  f.theorem = "Theorem 3 / Lemma 9 (Abelian HSP by Fourier sampling)";
  // Range cap 45 keeps lcm(m1, m2) <= 1980, within the Shor-domain
  // simulator budget (order_bound <= 2047).
  f.params = {
      {"m1", 12, 2, 45, "first cyclic factor"},
      {"m2", 8, 2, 45, "second cyclic factor"},
      {"h1", 3, 0, 44, "first coordinate of the planted generator (< m1)"},
      {"h2", 2, 0, 44, "second coordinate of the planted generator (< m2)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 m1 = get("m1");
    const u64 m2 = get("m2");
    const u64 h1 = get("h1");
    const u64 h2 = get("h2");
    if (h1 >= m1 || h2 >= m2)
      scenario_fail("abelian", "planted generator must satisfy h1 < m1 and "
                               "h2 < m2");
    auto g = grp::product_of_cyclics({m1, m2});
    std::vector<Code> hidden;
    if (h1 != 0 || h2 != 0) hidden = {g->pack({h1, h2})};
    AutoOptions o;
    o.order_bound = nt::lcm(m1, m2);
    return make_built(std::move(g), std::move(hidden), o, std::move(get));
  };
  return f;
}

// -------------------------------------------------------------------- shor

ScenarioFamily shor_family() {
  ScenarioFamily f;
  f.name = "shor";
  f.summary =
      "order finding: f(x) = a^x mod N hides <ord_N(a)> in "
      "Z_phi(N) - the oracle the paper's Theorem 4 hypotheses assume";
  f.theorem = "Theorem 4 hypotheses (order-finding oracle, Abelian HSP)";
  // Range cap 2048 keeps phi(N) <= 2047, within the Shor-domain
  // simulator budget.
  f.params = {
      {"modulus", 33, 3, 2048, "modulus N of the power map"},
      {"base", 5, 2, 2047,
       "base a; must be coprime to the modulus (when omitted and 5 is "
       "invalid for the modulus, the smallest coprime >= 2 is used)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 modulus = get("modulus");
    u64 base;
    if (spec.has("base")) {
      base = get("base");
      if (base >= modulus)
        scenario_fail("shor", "base must be < modulus");
      if (nt::gcd(base, modulus) != 1)
        scenario_fail("shor", "base must be coprime to the modulus");
    } else {
      // Keep the documented default of 5 whenever it is valid; small
      // moduli fall back to the smallest coprime so every in-range
      // modulus works out of the box.
      base = 0;
      for (u64 a = 2; a < modulus; ++a) {
        if (nt::gcd(a, modulus) == 1) {
          base = a;
          break;
        }
      }
      if (5 < modulus && nt::gcd(5, modulus) == 1) base = 5;
      if (base == 0) scenario_fail("shor", "no base is coprime to modulus");
      get.resolved.emplace_back("base", base);
    }
    const u64 phi = nt::euler_phi(modulus);
    const u64 r = nt::multiplicative_order(base, modulus);
    auto g = std::make_shared<grp::CyclicGroup>(phi);

    BuiltScenario b;
    b.group_name = "Z_" + std::to_string(phi) + " (exponents mod phi(" +
                   std::to_string(modulus) + "))";
    b.group_order = phi;
    b.params = std::move(get.resolved);
    b.options.order_bound = phi;

    // The genuine Shor oracle: labels are modular powers, not coset
    // minima — no subgroup enumeration anywhere in the hider.
    bb::HspInstance inst;
    inst.group = g;
    inst.counter = std::make_shared<bb::QueryCounter>();
    inst.bb = std::make_shared<bb::BlackBoxGroup>(g, inst.counter);
    inst.f = std::make_shared<bb::LambdaHider>(
        [base, modulus](Code x) { return nt::powmod(base, x, modulus); },
        inst.counter);
    if (r != phi) inst.planted_generators = {r};
    b.instance = std::move(inst);
    return b;
  };
  return f;
}

// ---------------------------------------------------------------- registry

std::vector<ScenarioFamily> make_registry() {
  std::vector<ScenarioFamily> families;
  families.push_back(abelian_family());
  families.push_back(dihedral_family());
  families.push_back(elem_abelian2_family());
  families.push_back(extraspecial_family());
  families.push_back(gf2affine_family());
  families.push_back(heisenberg_family());
  families.push_back(quaternion_family());
  families.push_back(shor_family());
  families.push_back(symmetric_family());
  families.push_back(wreath_family());
  for (ScenarioFamily& f : generator_scenario_families())
    families.push_back(std::move(f));
  std::sort(families.begin(), families.end(),
            [](const ScenarioFamily& a, const ScenarioFamily& b) {
              return a.name < b.name;
            });
  return families;
}

}  // namespace

const std::vector<ScenarioFamily>& scenario_registry() {
  static const std::vector<ScenarioFamily> registry = make_registry();
  return registry;
}

const ScenarioFamily* find_scenario_family(std::string_view name) {
  for (const ScenarioFamily& f : scenario_registry())
    if (f.name == name) return &f;
  return nullptr;
}

namespace {

// Levenshtein edit distance, for "did you mean" suggestions on unknown
// scenario names. Registry names are short, so the O(|a|*|b|) DP is fine.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

}  // namespace

const ScenarioFamily& scenario_family_or_throw(const std::string& name) {
  if (const ScenarioFamily* f = find_scenario_family(name)) return *f;
  std::ostringstream os;
  os << "unknown scenario '" << name << "'; registered scenarios:";
  for (const ScenarioFamily& f : scenario_registry()) os << " " << f.name;
  // Suggest the nearest registered name when the typo is plausibly one:
  // within 2 edits, or a third of the typed length for longer names.
  const ScenarioFamily* best = nullptr;
  std::size_t best_dist = 0;
  for (const ScenarioFamily& f : scenario_registry()) {
    const std::size_t d = edit_distance(name, f.name);
    if (best == nullptr || d < best_dist) {
      best = &f;
      best_dist = d;
    }
  }
  if (best != nullptr &&
      best_dist <= std::max<std::size_t>(2, name.size() / 3)) {
    os << "; did you mean '" << best->name << "'?";
  }
  throw std::invalid_argument(os.str());
}

BuiltScenario build_scenario(const ScenarioSpec& spec) {
  const ScenarioFamily& fam = scenario_family_or_throw(spec.scenario);
  SpecMap params = spec.params;  // keep the caller's spec reusable
  BuiltScenario built = fam.build(params);
  built.family = fam.name;

  // Common solver knobs, overridable for every family.
  built.options.gprime_cap = params.get_u64(
      "gprime_cap", built.options.gprime_cap, 1,
      std::numeric_limits<u64>::max());
  built.options.order_bound =
      params.get_u64("order_bound", built.options.order_bound, 0,
                     std::numeric_limits<u64>::max());
  const std::string backend = params.get_string("backend", "auto");
  const auto parsed = qs::parse_sampler_backend(backend);
  if (!parsed.has_value()) {
    scenario_fail(fam.name, "unknown backend '" + backend +
                                "' (auto, mixed-radix, qubit, sparse, "
                                "analytic)");
  }
  if (*parsed == qs::SamplerBackend::kAnalytic) {
    scenario_fail(fam.name,
                  "backend=analytic needs planted generators; it is not an "
                  "oracle-driven sampler choice");
  }
  built.options.sampler.backend = *parsed;

  std::vector<std::string> known;
  for (const ScenarioParam& p : fam.params) known.push_back(p.key);
  known.push_back("gprime_cap");
  known.push_back("order_bound");
  known.push_back("backend");
  params.require_all_consumed("scenario '" + fam.name + "'", known);
  return built;
}

BuiltScenario build_scenario(const std::string& spec_text) {
  return build_scenario(parse_scenario_line(spec_text));
}

std::string scenario_fingerprint(const BuiltScenario& built) {
  Fingerprint fp(built.family);
  for (const auto& [key, value] : built.params) fp.add(key, value);
  fp.add("backend", qs::sampler_backend_name(built.options.sampler.backend));
  fp.add("gprime_cap", built.options.gprime_cap);
  fp.add("order_bound", built.options.order_bound);
  return fp.str();
}

qs::SamplerPlan estimate_scenario_bytes(const BuiltScenario& built) {
  return qs::plan_sampler(built.options.sampler, {built.group_order});
}

}  // namespace nahsp::hsp
