#include "nahsp/hsp/decompose.h"

#include <algorithm>

#include "nahsp/common/check.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/order.h"
#include "nahsp/linalg/smith.h"
#include "nahsp/numtheory/factor.h"

namespace nahsp::hsp {

namespace {
using grp::Code;
}

AbelianDecomposition decompose_abelian(const bb::BlackBoxGroup& g, Rng& rng,
                                       const DecomposeOptions& opts) {
  const std::vector<Code> gens = g.generators();
  NAHSP_REQUIRE(!gens.empty(), "group has no generators");
  u64 order_bound = opts.order_bound;
  if (order_bound == 0) {
    NAHSP_REQUIRE(g.encoding_bits() <= 20,
                  "pass an explicit order bound for wide encodings");
    order_bound = u64{1} << g.encoding_bits();
  }

  // Orders of the generators (quantum order finding, unique encoding).
  const std::size_t r = gens.size();
  std::vector<u64> orders(r);
  for (std::size_t i = 0; i < r; ++i)
    orders[i] = find_order_shor(g, gens[i], order_bound, rng);

  // Relation lattice: kernel of phi(a) = prod g_i^{a_i} over
  // Z_{s1} x ... x Z_{sr} (an instance of the Abelian HSP with the
  // element codes as labels; unique encoding).
  std::vector<std::vector<Code>> tables(r);
  for (std::size_t i = 0; i < r; ++i) {
    Code acc = g.id();
    for (u64 a = 0; a < orders[i]; ++a) {
      tables[i].push_back(acc);
      acc = g.mul(acc, gens[i]);
    }
  }
  auto product_of = [&](const la::AbVec& digits) -> Code {
    Code acc = tables[0][digits[0]];
    for (std::size_t i = 1; i < r; ++i)
      acc = g.mul(acc, tables[i][digits[i]]);
    return acc;
  };
  qs::LabelFn label = [&](const la::AbVec& digits) {
    return static_cast<u64>(product_of(digits));
  };
  AbelianHspOptions hsp_opts;
  hsp_opts.membership_check = [&](const la::AbVec& digits) {
    return g.is_id(product_of(digits));
  };
  const auto sampler =
      qs::make_coset_sampler(opts.sampler, orders, label, &g.counter());
  const AbelianHspResult kernel = solve_abelian_hsp(*sampler, rng, hsp_opts);

  // G ~= Z^r / L where L is spanned by the kernel generators and
  // diag(orders); the Smith form of L's basis gives the invariant
  // factors.
  std::vector<std::vector<la::i64>> rows;
  for (const la::AbVec& k : kernel.generators) {
    rows.emplace_back(k.begin(), k.end());
  }
  for (std::size_t i = 0; i < r; ++i) {
    std::vector<la::i64> row(r, 0);
    row[i] = static_cast<la::i64>(orders[i]);
    rows.push_back(std::move(row));
  }
  const la::IMat basis = la::IMat::from_rows(rows);
  const std::vector<la::i128> inv = la::invariant_factors(basis);

  AbelianDecomposition out;
  for (const la::i128 d : inv) {
    NAHSP_CHECK(d > 0, "invariant factor must be positive");
    const u64 dv = static_cast<u64>(d);
    if (dv == 1) continue;
    out.invariant_factors.push_back(dv);
    out.order *= dv;
    for (const auto& [p, e] : nt::factorize(dv)) {
      u64 pe = 1;
      for (int t = 0; t < e; ++t) pe *= p;
      out.primary_orders.push_back(pe);
    }
  }
  std::sort(out.invariant_factors.begin(), out.invariant_factors.end());
  std::sort(out.primary_orders.begin(), out.primary_orders.end());
  return out;
}

}  // namespace nahsp::hsp
