#include "nahsp/hsp/checkpoint.h"

#include <ostream>
#include <sstream>

#include "nahsp/common/json.h"
#include "nahsp/common/jsonl.h"

namespace nahsp::hsp {

namespace {

constexpr const char* kSchema = "nahsp-checkpoint/v1";

[[noreturn]] void bad_record(const std::string& what) {
  throw std::invalid_argument("checkpoint record: " + what);
}

const JsonValue& member_or_throw(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) bad_record(std::string("missing field '") + key + "'");
  return *v;
}

std::uint64_t u64_field(const JsonValue& obj, const char* key) {
  try {
    return member_or_throw(obj, key).as_u64();
  } catch (const JsonParseError& e) {
    bad_record(std::string("field '") + key + "': " + e.what());
  }
}

std::string string_field(const JsonValue& obj, const char* key) {
  const JsonValue& v = member_or_throw(obj, key);
  if (!v.is_string())
    bad_record(std::string("field '") + key + "' must be a string");
  return v.string_value;
}

bool bool_field(const JsonValue& obj, const char* key) {
  const JsonValue& v = member_or_throw(obj, key);
  if (!v.is_bool())
    bad_record(std::string("field '") + key + "' must be a boolean");
  return v.bool_value;
}

double double_field(const JsonValue& obj, const char* key) {
  const JsonValue& v = member_or_throw(obj, key);
  if (!v.is_number())
    bad_record(std::string("field '") + key + "' must be a number");
  return v.number_value;
}

}  // namespace

std::string checkpoint_line(const CheckpointRecord& rec) {
  std::ostringstream os;
  JsonWriter w(os, JsonWriter::Style::kCompact);
  w.begin_object();
  w.field("schema", kSchema);
  w.field("index", rec.index);
  w.field("fingerprint", rec.fingerprint);
  w.field("success", rec.success);
  w.field("method", rec.method);
  w.field("error", rec.error);
  w.field("error_kind", rec.error_kind);
  w.field("verified", rec.verified);
  w.key("generators");
  w.begin_array();
  for (const grp::Code c : rec.generators)
    w.value(static_cast<std::uint64_t>(c));
  w.end_array();
  w.key("queries");
  w.begin_object();
  w.field("group_ops", rec.queries.group_ops);
  w.field("classical_queries", rec.queries.classical_queries);
  w.field("quantum_queries", rec.queries.quantum_queries);
  w.field("sim_basis_evals", rec.queries.sim_basis_evals);
  w.end_object();
  w.field("seconds", rec.seconds);
  w.end_object();
  return os.str();
}

CheckpointRecord parse_checkpoint_line(std::string_view line) {
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const JsonParseError& e) {
    bad_record(std::string("not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) bad_record("not a JSON object");
  if (string_field(doc, "schema") != kSchema)
    bad_record("schema tag is not '" + std::string(kSchema) + "'");

  CheckpointRecord rec;
  rec.index = u64_field(doc, "index");
  rec.fingerprint = string_field(doc, "fingerprint");
  rec.success = bool_field(doc, "success");
  rec.method = u64_field(doc, "method");
  rec.error = string_field(doc, "error");
  rec.error_kind = string_field(doc, "error_kind");
  rec.verified = bool_field(doc, "verified");

  const JsonValue& gens = member_or_throw(doc, "generators");
  if (!gens.is_array()) bad_record("field 'generators' must be an array");
  for (const JsonValue& g : gens.array_items) {
    if (!g.is_number()) bad_record("generator codes must be numbers");
    rec.generators.push_back(static_cast<grp::Code>(g.as_u64()));
  }

  const JsonValue& q = member_or_throw(doc, "queries");
  if (!q.is_object()) bad_record("field 'queries' must be an object");
  rec.queries.group_ops = u64_field(q, "group_ops");
  rec.queries.classical_queries = u64_field(q, "classical_queries");
  rec.queries.quantum_queries = u64_field(q, "quantum_queries");
  rec.queries.sim_basis_evals = u64_field(q, "sim_basis_evals");

  rec.seconds = double_field(doc, "seconds");
  return rec;
}

ShardCheckpoint load_checkpoint_file(const std::string& path,
                                     std::ostream* warnings) {
  const JsonlFile file = read_jsonl(path);
  ShardCheckpoint out;
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    try {
      out.records.push_back(parse_checkpoint_line(file.lines[i]));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("checkpoint " + path + ":" +
                                  std::to_string(i + 1) + ": " + e.what());
    }
  }
  if (file.torn_tail) {
    // The signature of a writer killed mid-append; the record was never
    // durable, so the item simply re-runs.
    out.skipped_torn_tail = true;
    if (warnings != nullptr)
      *warnings << "warning: checkpoint " << path
                << ": skipping torn final line (" << file.torn_text.size()
                << " bytes, no trailing newline); the interrupted item "
                   "will re-run\n";
  }
  return out;
}

std::string shard_checkpoint_filename(std::size_t shard,
                                      std::size_t num_shards) {
  return "shard-" + std::to_string(shard) + "-of-" +
         std::to_string(num_shards) + ".jsonl";
}

BatchItemReport batch_item_from_record(const CheckpointRecord& rec) {
  BatchItemReport item;
  item.success = rec.success;
  if (rec.success) {
    item.solution.generators = rec.generators;
    item.solution.method = static_cast<Method>(rec.method);
  }
  item.error = rec.error;
  item.error_kind = rec.error_kind;
  item.queries = rec.queries;
  item.seconds = rec.seconds;
  return item;
}

}  // namespace nahsp::hsp
