#include "nahsp/hsp/instance.h"

#include <algorithm>
#include <unordered_map>

#include "nahsp/groups/algorithms.h"

namespace nahsp::hsp {

bool verify_same_subgroup(const grp::Group& g,
                          const std::vector<grp::Code>& found,
                          const std::vector<grp::Code>& planted,
                          std::size_t cap) {
  return grp::same_subgroup(g, found, planted, cap);
}

bool validate_hiding_promise(const grp::Group& g,
                             const bb::HidingFunction& f,
                             const std::vector<grp::Code>& planted,
                             std::size_t cap) {
  const std::vector<grp::Code> elems = grp::enumerate_group(g, cap);
  const std::vector<grp::Code> h = grp::enumerate_subgroup(g, planted, cap);
  // Two elements share a label iff they share a left coset of H.
  std::unordered_map<std::uint64_t, grp::Code> label_rep;
  for (const grp::Code x : elems) {
    const std::uint64_t lab = f.eval_uncounted(x);
    const auto [it, fresh] = label_rep.emplace(lab, x);
    if (fresh) continue;
    // Same label: require x^{-1} * rep in H.
    const grp::Code q = g.mul(g.inv(x), it->second);
    if (!std::binary_search(h.begin(), h.end(), q)) return false;
  }
  // Count cosets: |labels| * |H| must equal |G|.
  return label_rep.size() * h.size() == elems.size();
}

}  // namespace nahsp::hsp
