#include "nahsp/hsp/elem_abelian2.h"

#include <algorithm>
#include <unordered_set>

#include "nahsp/common/bits.h"
#include "nahsp/common/cancel.h"
#include "nahsp/common/check.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/membership.h"
#include "nahsp/numtheory/arith.h"
#include "nahsp/numtheory/factor.h"

namespace nahsp::hsp {

namespace {

using grp::Code;

// prod_i n_i^{eps_i}; a homomorphism Z_2^m -> N because N is elementary
// Abelian of exponent 2.
Code product_of_n(const bb::BlackBoxGroup& g, const std::vector<Code>& n_gens,
                  const la::AbVec& eps, std::size_t offset) {
  Code acc = g.id();
  for (std::size_t i = 0; i < n_gens.size(); ++i) {
    if (eps[offset + i] != 0) acc = g.mul(acc, n_gens[i]);
  }
  return acc;
}

}  // namespace

ElemAbelian2Result solve_hsp_elem_abelian2(
    const bb::BlackBoxGroup& g, const std::vector<Code>& n_gens,
    const bb::HidingFunction& f, Rng& rng,
    const ElemAbelian2Options& opts) {
  NAHSP_REQUIRE(!n_gens.empty(), "N needs at least one generator");
  const std::size_t m = n_gens.size();
  const u64 id_label = f.eval(g.id());
  ElemAbelian2Result res;

  // ---- 1. H ∩ N via the Abelian HSP over Z_2^m (paper: Theorem 3). ----
  std::vector<Code> h_cap_n_gens;
  {
    const std::vector<u64> dims(m, 2);
    qs::LabelFn label = [&](const la::AbVec& eps) {
      return f.eval_uncounted(product_of_n(g, n_gens, eps, 0));
    };
    AbelianHspOptions hsp_opts;
    hsp_opts.membership_check = [&](const la::AbVec& eps) {
      return f.eval(product_of_n(g, n_gens, eps, 0)) == id_label;
    };
    const auto sampler =
        qs::make_coset_sampler(opts.sampler, dims, label, &f.counter());
    const AbelianHspResult r = solve_abelian_hsp(*sampler, rng, hsp_opts);
    for (const la::AbVec& eps : r.generators) {
      const Code x = product_of_n(g, n_gens, eps, 0);
      if (!g.is_id(x)) h_cap_n_gens.push_back(x);
    }
  }

  // ---- Membership oracle for N. ----
  auto in_n = [&](Code x) -> bool {
    if (opts.n_membership) return opts.n_membership(x);
    if (g.is_id(x)) return true;
    // N has exponent 2 and is Abelian: cheap necessary filters first.
    if (!g.is_id(g.mul(x, x))) return false;
    for (const Code n : n_gens) {
      if (!g.is_id(g.commutator(x, n))) return false;
    }
    // Constructive membership in <n_1..n_m> (orders all <= 2).
    MembershipOptions mo;
    mo.order_bound = 2;
    mo.sampler = opts.sampler;
    return constructive_membership(g, n_gens, x, rng, mo).representable;
  };

  // ---- 2. Coset representatives V for G/N. ----
  std::vector<Code> v_reps;  // excludes the identity coset
  const std::vector<Code> gens = g.generators();
  if (opts.assume_cyclic_factor) {
    res.cyclic_route = true;
    // Coset label of xN: supplied, or min-over-N enumeration fallback.
    std::function<u64(Code)> coset_label = opts.coset_label;
    std::vector<Code> n_elems;
    if (!coset_label) {
      n_elems = grp::enumerate_subgroup(g, n_gens, opts.n_enum_cap);
      coset_label = [&g, n_elems](Code x) -> u64 {
        Code best = ~Code{0};
        for (const Code n : n_elems) best = std::min(best, g.mul(x, n));
        return best;
      };
    }
    const u64 id_coset = coset_label(g.id());
    u64 bound = opts.factor_order_bound;
    if (bound == 0) {
      NAHSP_REQUIRE(g.encoding_bits() <= 20,
                    "pass factor_order_bound for wide encodings");
      bound = u64{1} << g.encoding_bits();
    }
    // Orders of the generators mod N (Theorem 10 machinery: Shor-style
    // period finding over the coset labels).
    std::vector<u64> orders(gens.size());
    for (std::size_t j = 0; j < gens.size(); ++j) {
      const Code x = gens[j];
      std::vector<Code> powers{g.id()};
      auto power_label = [&](u64 k) -> u64 {
        while (powers.size() <= k) powers.push_back(g.mul(powers.back(), x));
        return coset_label(powers[k]);
      };
      auto verify = [&](u64 t) { return coset_label(g.pow(x, t)) == id_coset; };
      orders[j] = find_order_shor(power_label, verify, bound, rng,
                                  &g.counter());
    }
    u64 factor_order = 1;
    for (const u64 r : orders) factor_order = nt::lcm(factor_order, r);
    // Sylow generators of the cyclic factor and all their p-power layers.
    for (const auto& [p, h] : nt::factorize(factor_order)) {
      u64 ph = 1;
      for (int i = 0; i < h; ++i) ph *= p;
      // Find a generator whose order mod N carries the full p-part.
      std::size_t j = gens.size();
      for (std::size_t cand = 0; cand < gens.size(); ++cand) {
        if (orders[cand] % ph == 0) {
          j = cand;
          break;
        }
      }
      NAHSP_CHECK(j < gens.size(), "no generator carries the Sylow p-part");
      const Code xp = g.pow(gens[j], orders[j] / ph);
      // Layers x_p^{p^l}, l = 0..h-1, generate every p-subgroup of the
      // cyclic Sylow; x_p^{p^h} is in N already.
      u64 e = 1;
      for (int l = 0; l < h; ++l) {
        v_reps.push_back(g.pow(xp, e));
        e *= p;
      }
    }
    res.coset_reps_used = v_reps.size();
  } else {
    // General route: BFS transversal of G/N via the membership oracle.
    std::vector<Code> v{g.id()};
    std::size_t head = 0;
    while (head < v.size()) {
      const Code cur = v[head++];
      for (const Code s : gens) {
        const Code c = g.mul(cur, s);
        bool fresh = true;
        for (const Code w : v) {
          if (in_n(g.mul(g.inv(w), c))) {
            fresh = false;
            break;
          }
        }
        if (fresh) {
          NAHSP_REQUIRE(v.size() < opts.factor_cap,
                        "G/N exceeds the coset cap");
          v.push_back(c);
        }
      }
    }
    v_reps.assign(v.begin() + 1, v.end());
    res.coset_reps_used = v.size();
  }

  // ---- 3. Per representative: Abelian HSP on Z_2 x Z_2^m. ----
  // Each representative hides a different label function, so each gets
  // its own sampler; within one representative the batched solver still
  // amortises all rounds over a single cached outcome distribution.
  std::vector<Code> collected = h_cap_n_gens;
  std::vector<u64> dims(m + 1, 2);
  for (const Code z : v_reps) {
    cancel_checkpoint();
    qs::LabelFn label = [&](const la::AbVec& digits) {
      Code x = product_of_n(g, n_gens, digits, 1);
      if (digits[0] != 0) x = g.mul(x, z);
      return f.eval_uncounted(x);
    };
    AbelianHspOptions hsp_opts;
    hsp_opts.membership_check = [&](const la::AbVec& digits) {
      Code x = product_of_n(g, n_gens, digits, 1);
      if (digits[0] != 0) x = g.mul(x, z);
      return f.eval(x) == id_label;
    };
    const auto sampler =
        qs::make_coset_sampler(opts.sampler, dims, label, &f.counter());
    const AbelianHspResult r = solve_abelian_hsp(*sampler, rng, hsp_opts);
    for (const la::AbVec& gen : r.generators) {
      if (gen[0] == 0) continue;
      // (1, w) in the hidden subgroup means f(w z) = f(1): w z in H.
      const Code t = g.mul(product_of_n(g, n_gens, gen, 1), z);
      NAHSP_ORACLE_CHECK(f.eval(t) == id_label,
                         "certified kernel element escaped H");
      collected.push_back(t);
    }
  }

  std::sort(collected.begin(), collected.end());
  collected.erase(std::unique(collected.begin(), collected.end()),
                  collected.end());
  std::erase_if(collected, [&g](Code c) { return g.is_id(c); });
  res.generators = std::move(collected);
  return res;
}

}  // namespace nahsp::hsp
