#include "nahsp/hsp/solve.h"

#include "nahsp/common/check.h"
#include "nahsp/groups/algorithms.h"

namespace nahsp::hsp {

const char* method_name(Method m) {
  switch (m) {
    case Method::kElemAbelian2:
      return "theorem-13 (elementary Abelian normal 2-subgroup)";
    case Method::kSmallCommutator:
      return "theorem-11 (small commutator subgroup)";
    case Method::kHiddenNormal:
      return "theorem-8 (hidden normal subgroup)";
  }
  return "unknown";
}

HspSolution solve_hsp(const bb::BlackBoxGroup& g,
                      const bb::HidingFunction& f, Rng& rng,
                      const AutoOptions& opts) {
  // Route 1: Theorem 13 when N = Z_2^k is known.
  if (opts.elem_abelian_2_subgroup.has_value()) {
    ElemAbelian2Options ea = opts.elem_abelian_2_options;
    if (ea.factor_order_bound == 0) ea.factor_order_bound = opts.order_bound;
    const auto res = solve_hsp_elem_abelian2(
        g, *opts.elem_abelian_2_subgroup, f, rng, ea);
    return {res.generators, Method::kElemAbelian2};
  }

  // Route 2: Theorem 11 when G' is small enough to enumerate.
  bool gprime_small = true;
  try {
    (void)grp::commutator_subgroup(g, opts.gprime_cap);
  } catch (const std::invalid_argument&) {
    gprime_small = false;  // closure blew the cap
  }
  if (gprime_small) {
    SmallCommutatorOptions sc;
    sc.gprime_cap = opts.gprime_cap;
    sc.order_bound = opts.order_bound;
    const auto res = solve_hsp_small_commutator(g, f, rng, sc);
    return {res.generators, Method::kSmallCommutator};
  }

  // Route 3: assume normal (Theorem 8) — verified, so a violated
  // assumption cannot produce a wrong answer.
  NormalHspOptions no;
  no.order_bound = opts.order_bound;
  const auto res = find_hidden_normal_subgroup(g, f, rng, no);
  return {res.generators, Method::kHiddenNormal};
}

}  // namespace nahsp::hsp
