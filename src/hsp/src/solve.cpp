#include "nahsp/hsp/solve.h"

#include <memory>

#include "nahsp/common/budget.h"
#include "nahsp/common/check.h"
#include "nahsp/common/parallel.h"
#include "nahsp/common/timer.h"
#include "nahsp/groups/algorithms.h"

namespace nahsp::hsp {

const char* method_name(Method m) {
  switch (m) {
    case Method::kElemAbelian2:
      return "theorem-13 (elementary Abelian normal 2-subgroup)";
    case Method::kSmallCommutator:
      return "theorem-11 (small commutator subgroup)";
    case Method::kHiddenNormal:
      return "theorem-8 (hidden normal subgroup)";
  }
  return "unknown";
}

HspSolution solve_hsp(const bb::BlackBoxGroup& g,
                      const bb::HidingFunction& f, Rng& rng,
                      const AutoOptions& opts) {
  // Install the caller's cancel/timeout token for the whole solve; the
  // subroutine round loops poll it via cancel_checkpoint().
  const ScopedCancelToken cancel_scope(opts.cancel.get());
  cancel_checkpoint();

  // Route 1: Theorem 13 when N = Z_2^k is known.
  if (opts.elem_abelian_2_subgroup.has_value()) {
    ElemAbelian2Options ea = opts.elem_abelian_2_options;
    if (ea.factor_order_bound == 0) ea.factor_order_bound = opts.order_bound;
    if (ea.sampler.backend == qs::SamplerBackend::kAuto)
      ea.sampler = opts.sampler;
    const auto res = solve_hsp_elem_abelian2(
        g, *opts.elem_abelian_2_subgroup, f, rng, ea);
    return {res.generators, Method::kElemAbelian2};
  }

  // Route 2: Theorem 11 when G' is small enough to enumerate.
  bool gprime_small = true;
  try {
    (void)grp::commutator_subgroup(g, opts.gprime_cap);
  } catch (const std::invalid_argument&) {
    gprime_small = false;  // closure blew the cap
  }
  if (gprime_small) {
    SmallCommutatorOptions sc;
    sc.gprime_cap = opts.gprime_cap;
    sc.order_bound = opts.order_bound;
    sc.sampler = opts.sampler;
    const auto res = solve_hsp_small_commutator(g, f, rng, sc);
    return {res.generators, Method::kSmallCommutator};
  }

  cancel_checkpoint();

  // Route 3: assume normal (Theorem 8) — verified, so a violated
  // assumption cannot produce a wrong answer.
  NormalHspOptions no;
  no.order_bound = opts.order_bound;
  no.sampler = opts.sampler;
  const auto res = find_hidden_normal_subgroup(g, f, rng, no);
  return {res.generators, Method::kHiddenNormal};
}

BatchReport solve_hsp_batch(const std::vector<bb::HspInstance>& instances,
                            const BatchOptions& opts) {
  NAHSP_REQUIRE(
      opts.per_instance.empty() ||
          opts.per_instance.size() == instances.size(),
      "per_instance options must be empty or match the instance count");
  NAHSP_REQUIRE(
      opts.per_instance_rng.empty() ||
          opts.per_instance_rng.size() == instances.size(),
      "per_instance_rng must be empty or match the instance count");
  const Timer batch_timer;
  BatchReport report;
  report.items.resize(instances.size());
  if (instances.empty()) return report;

  // Streams are derived up front, in index order, so instance i's
  // randomness is a pure function of (base_seed, i) no matter which
  // worker runs it or when. A caller managing its own streams can
  // override per instance (per_instance_rng), which keeps request-level
  // determinism independent of batch composition.
  std::vector<Rng> rngs;
  if (!opts.per_instance_rng.empty()) {
    rngs = opts.per_instance_rng;
  } else {
    SplitRng streams(opts.base_seed);
    rngs.reserve(instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i)
      rngs.push_back(streams.stream(i));
  }

  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    // Kernels must run serially inside batch tasks at EVERY width —
    // including the pool's serial fast paths (width 1, single
    // instance), where no worker guard is active yet. Without this a
    // width-1 batch would fan each instance's kernels out on the
    // global pool, breaking the "batch applies exactly the configured
    // width" contract and any serial-baseline measurement.
    ThreadPool::TaskScope serial_kernels;
    for (std::size_t i = lo; i < hi; ++i) {
      const bb::HspInstance& inst = instances[i];
      BatchItemReport& item = report.items[i];
      const AutoOptions& auto_opts =
          opts.per_instance.empty() ? opts.solver : opts.per_instance[i];
      const Timer t;
      try {
        NAHSP_REQUIRE(inst.bb != nullptr && inst.f != nullptr,
                      "batch instance missing black box or hiding function");
        item.solution = solve_hsp(*inst.bb, *inst.f, rngs[i], auto_opts);
        item.success = true;
      } catch (const oracle_error& e) {
        item.error = e.what();
        item.error_kind = "oracle_error";
      } catch (const retry_exhausted& e) {
        item.error = e.what();
        item.error_kind = "retry_exhausted";
      } catch (const OperationCancelled& e) {
        item.error = e.what();
        item.error_kind = "cancelled";
      } catch (const resource_error& e) {
        item.error = e.what();
        item.error_kind = "resource_error";
      } catch (const std::invalid_argument& e) {
        item.error = e.what();
        item.error_kind = "invalid_argument";
      } catch (const internal_error& e) {
        item.error = e.what();
        item.error_kind = "internal_error";
      } catch (const std::exception& e) {
        item.error = e.what();
        item.error_kind = "exception";
      } catch (...) {
        // User oracles can throw anything; per-item isolation must
        // hold even for non-std exceptions.
        item.error = "non-standard exception from solver or oracle";
        item.error_kind = "exception";
      }
      item.seconds = t.seconds();
      if (inst.counter != nullptr) item.queries = *inst.counter;
      // Streaming hook: the item is final from here on; the callback
      // runs on this worker thread (see BatchOptions::on_item).
      if (opts.on_item) opts.on_item(i, item);
    }
  };

  // Fan out one task per instance. Inside a task the simulator kernels
  // run serially (nested-region guard), so the batch applies exactly
  // `threads` threads in total. A dedicated width gets a private pool —
  // never the global one, whose single job slot a multi-second batch
  // would otherwise monopolise against unrelated kernel work — but only
  // when the fan-out can actually use it: a nested batch or a
  // single-instance batch runs inline either way, so spawning workers
  // for it would be pure thread churn.
  if (opts.threads > 0 && !ThreadPool::in_worker() && instances.size() > 1) {
    ThreadPool pool(opts.threads);
    pool.parallel_for(0, instances.size(), 1, run_range);
  } else {
    parallel_for(0, instances.size(), 1, run_range);
  }

  for (const BatchItemReport& item : report.items) {
    if (item.success) ++report.solved;
    report.total_queries.group_ops += item.queries.group_ops;
    report.total_queries.classical_queries += item.queries.classical_queries;
    report.total_queries.quantum_queries += item.queries.quantum_queries;
    report.total_queries.sim_basis_evals += item.queries.sim_basis_evals;
  }
  report.seconds = batch_timer.seconds();
  return report;
}

}  // namespace nahsp::hsp
