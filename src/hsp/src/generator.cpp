#include "nahsp/hsp/generator.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "nahsp/common/check.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/groups/quaternion.h"
#include "scenario_detail.h"

namespace nahsp::hsp {

namespace {

using detail::ParamReader;
using detail::scenario_fail;
using grp::Code;

// Construction Rng: one fixed stream per (family tag, gen_seed) so the
// families draw independently even under equal seeds, and a draw is a
// pure function of its arguments.
Rng construction_rng(u64 tag, u64 gen_seed) {
  return Rng(tag ^ (gen_seed * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL));
}

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr u64 kTagAbelian = 0x61626c6eU;      // "abln"
constexpr u64 kTagNormal = 0x6e6f726dU;       // "norm"
constexpr u64 kTagTower = 0x00747772U;        // "twr"
constexpr u64 kTagAdversary = 0x61647665U;    // "adve"

}  // namespace

GeneratedScenario draw_random_abelian(u64 gen_seed, u64 max_order,
                                      u64 factors, u64 hidden) {
  NAHSP_REQUIRE(max_order >= 4, "max_order must be >= 4");
  NAHSP_REQUIRE(factors >= 1, "factors must be >= 1");
  Rng rng = construction_rng(kTagAbelian, gen_seed);

  // Invariant-factor chain d_1 | d_2 | ... | d_r with product <= max_order
  // (each step multiplies the previous factor by a small multiplier), so
  // any finite Abelian group shape within the budget is reachable.
  const u64 want = 1 + rng.below(factors);
  // d_1 in [2, 8], clamped so it fits even the smallest budget (max_order
  // can be as low as 4): the chain below never needs to pop its last —
  // and possibly only — factor.
  std::vector<u64> orders{2 + rng.below(std::min<u64>(7, max_order - 1))};
  u64 product = orders[0];
  while (orders.size() < want) {
    const u64 next = orders.back() * (1 + rng.below(4));
    if (product > max_order / next) break;
    orders.push_back(next);
    product *= next;
  }

  GeneratedScenario gs;
  auto g = grp::product_of_cyclics(orders);
  for (u64 t = 0; t < hidden; ++t) {
    std::vector<Code> coords(orders.size());
    for (std::size_t i = 0; i < orders.size(); ++i)
      coords[i] = rng.below(orders[i]);
    const Code h = g->pack(coords);
    if (!g->is_id(h)) gs.hidden.push_back(h);
  }
  // The largest invariant factor is the group exponent, the tight Shor
  // domain bound (max_order <= 1920 keeps it within the simulator budget).
  gs.options.order_bound = orders.back();
  gs.group = std::move(g);
  return gs;
}

GeneratedScenario draw_random_normal(u64 gen_seed, u64 base, u64 size,
                                     u64 picks) {
  NAHSP_REQUIRE(base <= 3, "base must be in [0, 3]");
  NAHSP_REQUIRE(size >= 1 && size <= 4, "size must be in [1, 4]");
  Rng rng = construction_rng(kTagNormal, gen_seed);

  GeneratedScenario gs;
  switch (base) {
    case 0: {  // dihedral D_n, n in [4, 7 + 8*size]
      const u64 n = 4 + rng.below(4 + 8 * size);
      gs.group = std::make_shared<grp::DihedralGroup>(n);
      gs.options.order_bound = n;
      break;
    }
    case 1: {  // quaternion Q_8 .. Q_64
      const u64 order = u64{8} << rng.below(size);
      gs.group = std::make_shared<grp::QuaternionGroup>(order);
      gs.options.order_bound = order;
      break;
    }
    case 2: {  // Heisenberg Heis(p), p in {3, 5, 7} by size
      static constexpr u64 primes[3] = {3, 5, 7};
      const u64 p = primes[rng.below(std::min<u64>(size, 3))];
      gs.group = std::make_shared<grp::HeisenbergGroup>(p, 1);
      gs.options.order_bound = p;
      break;
    }
    default: {  // symmetric S_3 / S_4 with Schreier-Sims coset labels
      const u64 d = 3 + rng.below(size >= 2 ? 2 : 1);
      gs.perm_group = grp::symmetric_group(static_cast<int>(d));
      gs.group = gs.perm_group;
      u64 fact = 1;
      for (u64 i = 2; i <= d; ++i) fact *= i;
      gs.options.order_bound = fact;
      break;
    }
  }

  // Planted subgroup: the normal closure of `picks` random elements —
  // normal by construction, which is exactly what Theorem 8 assumes.
  std::vector<Code> seed;
  for (u64 t = 0; t < picks; ++t) {
    const Code e =
        grp::random_word_element(*gs.group, gs.group->generators(), rng);
    if (!gs.group->is_id(e)) seed.push_back(e);
  }
  if (!seed.empty()) gs.hidden = grp::normal_closure(*gs.group, seed);
  gs.options.gprime_cap = 1;  // skip the Theorem 11 probe: exercise Theorem 8
  return gs;
}

GeneratedScenario draw_tower(u64 gen_seed, u64 depth, u64 shape, u64 k,
                             u64 picks) {
  NAHSP_REQUIRE(depth >= 1 && depth <= 4, "depth must be in [1, 4]");
  NAHSP_REQUIRE(k >= 2 && k <= 8, "k must be in [2, 8]");
  Rng rng = construction_rng(kTagTower, gen_seed);

  GeneratedScenario gs;
  if (shape == 0) {
    // Iterated wreath Z_2 wr ... wr Z_2: Sylow 2-subgroup of S_{2^depth}.
    gs.perm_group = grp::iterated_wreath_z2(static_cast<int>(depth));
    gs.group = gs.perm_group;
    std::vector<Code> seed;
    for (u64 t = 0; t < picks; ++t) {
      const Code e =
          grp::random_word_element(*gs.group, gs.group->generators(), rng);
      if (!gs.group->is_id(e)) seed.push_back(e);
    }
    gs.hidden = seed.empty() ? std::vector<Code>{}
                             : grp::normal_closure(*gs.group, seed);
    // The Theorem 8 Schreier walk enumerates |G/H| cosets; at depth 4
    // (|G| = 2^15) a small planted subgroup would blow the coset cap, so
    // grow the closure until the index fits (deterministic from rng).
    const u64 order = gs.group->order();
    for (int guard = 0; guard < 24; ++guard) {
      const u64 h_order =
          gs.hidden.empty()
              ? 1
              : grp::enumerate_subgroup(*gs.group, gs.hidden).size();
      if (order / h_order <= 8192) break;
      const Code e =
          grp::random_word_element(*gs.group, gs.group->generators(), rng);
      std::vector<Code> grown = gs.hidden;
      grown.push_back(e);
      gs.hidden = grp::normal_closure(*gs.group, grown);
    }
    gs.options.gprime_cap = 1;
    gs.options.order_bound = u64{1} << depth;  // the exponent of W_2^(d)
  } else {
    // Random GF(2) semidirect product Z_2^k x| Z_m: a random invertible
    // action T (product of elementary row operations), m = ord(T).
    grp::GF2Mat t = grp::GF2Mat::identity(static_cast<int>(k));
    for (int attempt = 0; attempt < 16; ++attempt) {
      for (u64 op = 0; op < 4 * k; ++op) {
        const int r = static_cast<int>(rng.below(k));
        int s = static_cast<int>(rng.below(k - 1));
        if (s >= r) ++s;
        // row_r += row_s: an elementary (invertible) transformation.
        grp::GF2Mat e = grp::GF2Mat::identity(static_cast<int>(k));
        e.set(r, s, true);
        t = e.mul(t);
      }
      if (t.mat_order() >= 2) break;
    }
    if (t.mat_order() < 2)
      t = grp::GF2Mat::companion(static_cast<int>(k), 3);  // x^k + x + 1
    auto g = std::make_shared<grp::GF2SemidirectCyclic>(
        static_cast<int>(k), t, t.mat_order());
    for (u64 p = 0; p < picks; ++p) {
      const Code h = g->make(rng.below(u64{1} << k), rng.below(g->m()));
      if (!g->is_id(h)) gs.hidden.push_back(h);
    }
    gs.options = detail::gf2_semidirect_options(g);
    gs.group = std::move(g);
  }
  return gs;
}

AdversarialScenario make_adversarial(AdversaryMode mode, u64 n, u64 corrupt,
                                     u64 gen_seed, bool abelian) {
  NAHSP_REQUIRE(n >= 4, "n must be >= 4");
  Rng rng = construction_rng(kTagAdversary, gen_seed);

  std::shared_ptr<const grp::Group> g;
  std::shared_ptr<const grp::DihedralGroup> dg;
  if (abelian) {
    g = std::make_shared<grp::CyclicGroup>(n);
  } else {
    dg = std::make_shared<grp::DihedralGroup>(n);
    g = dg;
  }

  AdversarialScenario adv;
  adv.options.order_bound = n;
  switch (mode) {
    case AdversaryMode::kTrivial:
      adv.instance = bb::make_instance(g, {});
      break;
    case AdversaryMode::kFull:
      adv.instance = bb::make_instance(g, g->generators());
      break;
    case AdversaryMode::kNonHiding: {
      // Non-hiding labels with a pinned head and a pseudo-random tail:
      // the identity keeps a reserved label, the codes 1 and 2 (the
      // rotations x and x^2) share a class that is provably not a coset,
      // and everything else scatters over eight values. The pinned head
      // makes the failure deterministic for every gen_seed: on the
      // dihedral substrate [x, y] = x^2 has a non-identity label, so the
      // Theorem 8 route runs its Schreier walk, where x and x^2 sharing
      // a label derives the Schreier element x with a lying label — the
      // coset-constancy oracle check fires. On Z_n the class {1, 2} has
      // the wrong size, so the sparse backend rejects at sampler build,
      // while the dense pipelines can only ever accept identity-labelled
      // kernel vectors (code 0) and so never report a wrong subgroup.
      const u64 salt = splitmix64(gen_seed ^ 0xbadf00dULL);
      bb::HspInstance inst;
      inst.group = g;
      inst.counter = std::make_shared<bb::QueryCounter>();
      inst.bb = std::make_shared<bb::BlackBoxGroup>(g, inst.counter);
      inst.f = std::make_shared<bb::LambdaHider>(
          [salt](Code c) -> u64 {
            if (c == 0) return 0x100;  // reserved identity label
            if (c <= 2) return 0x101;  // {x, x^2}: a non-coset class
            return 0x102 +
                   (splitmix64(c * 0x2545f4914f6cdd1dULL + salt) & 7);
          },
          inst.counter);
      adv.instance = std::move(inst);
      adv.options.gprime_cap = 1;  // Theorem 8: the route with oracle checks
      break;
    }
    case AdversaryMode::kAlmostHidden: {
      // Honest hider for H = <x^4> (resp. <4> in Z_n), corrupted at
      // `corrupt` points whose labels lie: point 1 is the generator x
      // claiming y's coset label — the first Schreier element the
      // Theorem 8 walk derives from that lie lands outside H with an
      // honest non-identity label, so the coset-constancy oracle check
      // fires deterministically. Remaining points are random lies.
      NAHSP_REQUIRE(n % 4 == 0, "mode=3 requires n to be a multiple of 4");
      const Code h_gen = abelian ? Code{4 % n} : dg->make(4 % n, false);
      std::vector<Code> planted;
      if (!g->is_id(h_gen)) planted.push_back(h_gen);
      bb::HspInstance base = bb::make_instance(g, planted);
      auto base_f = base.f;

      auto overrides = std::make_shared<std::unordered_map<Code, u64>>();
      const Code first = abelian ? Code{1} : dg->make(1, false);
      const Code other = abelian ? Code{2} : dg->make(0, true);
      overrides->emplace(first, base_f->eval_uncounted(other));
      // Extra lies carry fresh labels (outside every honest class) and
      // are rejection-sampled away from H (so the identity's level set
      // stays intact: no fake kernel elements for the dense pipelines to
      // accept), away from the generators, and away from `other` (so
      // the primary lie above keeps its honest collision partner — the
      // failure stays deterministic at every corruption count).
      const u64 id_label = base_f->eval_uncounted(g->id());
      const std::vector<Code> gens = g->generators();
      const u64 order = g->order();
      for (u64 extra = 1; extra < corrupt; ++extra) {
        for (int tries = 0; tries < 64; ++tries) {
          const Code c = 1 + rng.below(order - 1);  // non-identity codes
          if (!g->is_element(c) || c == other || c == first) continue;
          if (overrides->count(c) != 0) continue;  // distinct fresh points
          if (std::find(gens.begin(), gens.end(), c) != gens.end()) continue;
          if (base_f->eval_uncounted(c) == id_label) continue;  // inside H
          overrides->emplace(c, (u64{1} << 60) + extra);
          break;
        }
      }

      bb::HspInstance inst;
      inst.group = g;
      inst.counter = std::make_shared<bb::QueryCounter>();
      inst.bb = std::make_shared<bb::BlackBoxGroup>(g, inst.counter);
      inst.f = std::make_shared<bb::LambdaHider>(
          [base_f, overrides](Code c) {
            const auto it = overrides->find(c);
            return it != overrides->end() ? it->second
                                          : base_f->eval_uncounted(c);
          },
          inst.counter);
      inst.planted_generators = std::move(planted);
      adv.instance = std::move(inst);
      adv.options.gprime_cap = 1;
      break;
    }
  }
  return adv;
}

// ------------------------------------------------------------ families

namespace {

constexpr u64 kU64Max = std::numeric_limits<u64>::max();

BuiltScenario from_generated(GeneratedScenario&& gs, ParamReader&& get) {
  BuiltScenario b;
  b.group_name = gs.group->name();
  b.group_order = gs.group->order();
  b.params = std::move(get.resolved);
  b.options = std::move(gs.options);
  b.instance = gs.perm_group != nullptr
                   ? bb::make_perm_instance(gs.perm_group, std::move(gs.hidden))
                   : bb::make_instance(gs.group, std::move(gs.hidden));
  return b;
}

ScenarioFamily random_abelian_family() {
  ScenarioFamily f;
  f.name = "random_abelian";
  f.summary =
      "random Abelian group by invariant factors d_1 | d_2 | ... with "
      "random planted generators, drawn deterministically from gen_seed";
  f.theorem = "Theorem 3 / Lemma 9 (Abelian HSP by Fourier sampling)";
  f.params = {
      {"gen_seed", 1, 0, kU64Max,
       "construction seed: the whole instance is a function of it"},
      {"max_order", 96, 4, 1920,
       "cap on |G| (and the group exponent; 1920 fits the Shor budget)"},
      {"factors", 2, 1, 4, "maximum number of invariant factors"},
      {"hidden", 1, 0, 4, "number of random planted-generator draws"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 gen_seed = get("gen_seed");
    const u64 max_order = get("max_order");
    const u64 factors = get("factors");
    const u64 hidden = get("hidden");
    return from_generated(
        draw_random_abelian(gen_seed, max_order, factors, hidden),
        std::move(get));
  };
  return f;
}

ScenarioFamily random_normal_family() {
  ScenarioFamily f;
  f.name = "random_normal";
  f.summary =
      "random normal subgroup (closure of random elements) of a drawn "
      "dihedral/quaternion/Heisenberg/symmetric group, Theorem 8 route";
  f.theorem = "Theorem 8 (hidden normal subgroup)";
  f.params = {
      {"gen_seed", 1, 0, kU64Max,
       "construction seed: the whole instance is a function of it"},
      {"base", 0, 0, 3,
       "group zoo pick: 0 = dihedral, 1 = quaternion, 2 = Heisenberg, "
       "3 = symmetric (Schreier-Sims coset labels)"},
      {"size", 2, 1, 4, "scale knob for the drawn group order"},
      {"picks", 1, 0, 3,
       "random elements whose normal closure is planted (0 = trivial)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 gen_seed = get("gen_seed");
    const u64 base = get("base");
    const u64 size = get("size");
    const u64 picks = get("picks");
    return from_generated(draw_random_normal(gen_seed, base, size, picks),
                          std::move(get));
  };
  return f;
}

ScenarioFamily tower_family() {
  ScenarioFamily f;
  f.name = "tower";
  f.summary =
      "composite towers: iterated wreath Z_2 wr ... wr Z_2 (shape 0) or "
      "a random GF(2) semidirect product Z_2^k x| Z_m (shape 1)";
  f.theorem =
      "Theorem 8 (iterated wreath) / Theorem 13 (GF(2) semidirect)";
  f.params = {
      {"gen_seed", 1, 0, kU64Max,
       "construction seed: the whole instance is a function of it"},
      {"depth", 3, 1, 4,
       "wreath iteration depth (shape 0): |G| = 2^(2^depth - 1)"},
      {"shape", 0, 0, 1,
       "0 = iterated wreath tower, 1 = random GF(2) semidirect product"},
      {"k", 4, 2, 8, "dimension of N = Z_2^k (shape 1)"},
      {"picks", 1, 0, 3, "random planted-generator draws (0 = trivial)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 gen_seed = get("gen_seed");
    const u64 depth = get("depth");
    const u64 shape = get("shape");
    const u64 k = get("k");
    const u64 picks = get("picks");
    return from_generated(draw_tower(gen_seed, depth, shape, k, picks),
                          std::move(get));
  };
  return f;
}

ScenarioFamily adversarial_family() {
  ScenarioFamily f;
  f.name = "adversarial";
  f.summary =
      "near-miss instances: degenerate |H| in {1, |G|} (honest, solvable) "
      "or broken hiding promises that must raise oracle_error";
  f.theorem =
      "Theorem 8 failure contract (oracle checks reject broken promises)";
  f.params = {
      {"mode", 0, 0, 3,
       "0 = trivial H, 1 = H = G, 2 = non-hiding pseudo-random labels, "
       "3 = honest hider corrupted at `corrupt` points"},
      {"n", 8, 4, 512,
       "substrate size: D_n (default) or Z_n (abelian=1); mode=3 needs "
       "a multiple of 4"},
      {"corrupt", 2, 1, 8, "number of lying points in mode 3"},
      {"gen_seed", 1, 0, kU64Max,
       "construction seed for the corruption draws"},
      {"abelian", 0, 0, 1,
       "1 swaps D_n for Z_n: corrupt labels reach the Fourier-sampling "
       "pipeline (the sparse backend rejects at sampler build)"},
  };
  f.build = [params = f.params](SpecMap& spec) {
    ParamReader get{params, spec, {}};
    const u64 mode = get("mode");
    const u64 n = get("n");
    const u64 corrupt = get("corrupt");
    const u64 gen_seed = get("gen_seed");
    const u64 abelian = get("abelian");
    if (mode == 3 && n % 4 != 0)
      scenario_fail("adversarial", "mode=3 requires n to be a multiple of 4");
    AdversarialScenario adv = make_adversarial(
        static_cast<AdversaryMode>(mode), n, corrupt, gen_seed, abelian != 0);
    BuiltScenario b;
    b.group_name = adv.instance.group->name();
    b.group_order = adv.instance.group->order();
    b.params = std::move(get.resolved);
    b.options = std::move(adv.options);
    b.instance = std::move(adv.instance);
    return b;
  };
  return f;
}

}  // namespace

std::vector<ScenarioFamily> generator_scenario_families() {
  std::vector<ScenarioFamily> families;
  families.push_back(random_abelian_family());
  families.push_back(random_normal_family());
  families.push_back(tower_family());
  families.push_back(adversarial_family());
  return families;
}

}  // namespace nahsp::hsp
