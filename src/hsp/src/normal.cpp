#include "nahsp/hsp/normal.h"

#include "nahsp/common/check.h"
#include "nahsp/groups/algorithms.h"

namespace nahsp::hsp {

namespace {
using grp::Code;
}

NormalHspResult find_hidden_normal_subgroup(const bb::BlackBoxGroup& g,
                                            const bb::HidingFunction& f,
                                            Rng& rng,
                                            const NormalHspOptions& opts) {
  // Classical single-point probes are counted; the label function handed
  // to the quantum subroutines is uncounted — their bulk evaluations
  // realise superposition queries, which the samplers account as
  // quantum_queries + sim_basis_evals.
  auto label_classical = [&f](Code x) { return f.eval(x); };
  auto label_uncounted = [&f](Code x) { return f.eval_uncounted(x); };
  const u64 id_label = f.eval(g.id());

  NormalHspResult res;
  std::vector<Code> seed;  // elements of N whose normal closure is N
  if (factor_group_is_abelian(g, label_classical)) {
    res.abelian_factor = true;
    AbelianFactorOptions afo;
    afo.order_bound = opts.order_bound;
    afo.max_attempts = opts.max_attempts;
    afo.sampler = opts.sampler;
    seed = abelian_factor_relators(g, label_uncounted, rng, afo);
    // Relators generate N only up to normal closure.
    res.generators = grp::normal_closure(g, seed, opts.closure_cap);
  } else {
    res.abelian_factor = false;
    SchreierOptions so;
    so.factor_cap = opts.factor_cap;
    // The Schreier BFS genuinely queries f once per (coset, generator)
    // pair — poly(|G/N|) classical queries, as Theorems 11/13 allow.
    res.generators = schreier_generators(g, label_classical, so);
  }

  for (const Code n : res.generators) {
    NAHSP_ORACLE_CHECK(f.eval(n) == id_label,
                       "produced generator outside the hidden subgroup");
  }
  return res;
}

}  // namespace nahsp::hsp
