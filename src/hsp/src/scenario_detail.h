// Internal plumbing shared by the scenario registry (scenario.cpp) and
// the random-instance generator fleet (generator.cpp): declared-param
// fetching, BuiltScenario assembly, and the Theorem 13 option block for
// the GF(2) semidirect families. Not installed; include from src/ only.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nahsp/common/check.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/hsp/scenario.h"

namespace nahsp::hsp::detail {

using grp::Code;

[[noreturn]] inline void scenario_fail(const std::string& family,
                                       const std::string& msg) {
  throw std::invalid_argument("scenario '" + family + "': " + msg);
}

// Fetches declared parameters from the spec (default + declared range)
// and records the resolved values in declaration-call order, so every
// report shows exactly what was run.
struct ParamReader {
  const std::vector<ScenarioParam>& declared;
  SpecMap& spec;
  std::vector<std::pair<std::string, u64>> resolved;

  u64 operator()(std::string_view key) {
    for (const ScenarioParam& p : declared) {
      if (p.key == key) {
        const u64 v = spec.get_u64(key, p.def, p.min, p.max);
        resolved.emplace_back(p.key, v);
        return v;
      }
    }
    throw internal_error("scenario builder fetched undeclared key '" +
                         std::string(key) + "'");
  }
};

inline BuiltScenario make_built(std::shared_ptr<const grp::Group> g,
                                std::vector<Code> hidden, AutoOptions options,
                                ParamReader&& reader) {
  BuiltScenario b;
  b.group_name = g->name();
  b.group_order = g->order();
  b.params = std::move(reader.resolved);
  b.options = std::move(options);
  b.instance = bb::make_instance(std::move(g), std::move(hidden));
  return b;
}

// Low-k-bit alternating mask 0b...0101 — deterministic "interesting"
// planted vectors for the GF(2) families.
inline u64 alt_mask(u64 bits) {
  return 0x5555555555555555ULL & ((u64{1} << bits) - 1);
}

// Shared Theorem 13 options for the GF(2) semidirect families: the
// structure-aware N-membership and coset-label oracles (the DESIGN.md
// substitution for the Watrous |N>-state machinery).
inline AutoOptions gf2_semidirect_options(
    const std::shared_ptr<const grp::GF2SemidirectCyclic>& g) {
  AutoOptions o;
  o.elem_abelian_2_subgroup = g->normal_subgroup_generators();
  o.elem_abelian_2_options.assume_cyclic_factor = true;
  o.elem_abelian_2_options.factor_order_bound = g->m();
  o.elem_abelian_2_options.n_membership = [g](Code c) {
    return g->rot_of(c) == 0;
  };
  o.elem_abelian_2_options.coset_label = [g](Code c) { return g->rot_of(c); };
  return o;
}

}  // namespace nahsp::hsp::detail
