#include "nahsp/hsp/shard.h"

#include <csignal>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "nahsp/common/check.h"
#include "nahsp/common/fingerprint.h"
#include "nahsp/common/json.h"
#include "nahsp/common/jsonl.h"
#include "nahsp/common/rng.h"
#include "nahsp/hsp/instance.h"

namespace nahsp::hsp {

namespace {

constexpr const char* kManifestSchema = "nahsp-shards/v1";

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

/// Last usable record per fleet index from one shard file. Stale
/// records (fingerprint no longer matching the fleet item at that
/// index, or an index past the fleet) are dropped with a warning —
/// they describe a fleet this directory was built for, not this one.
void fold_records(const ShardCheckpoint& ckpt,
                  const std::vector<std::string>& fingerprints,
                  const std::string& path, std::ostream* warnings,
                  std::unordered_map<std::size_t, CheckpointRecord>* out) {
  for (const CheckpointRecord& rec : ckpt.records) {
    const auto index = static_cast<std::size_t>(rec.index);
    if (index >= fingerprints.size() ||
        rec.fingerprint != fingerprints[index]) {
      if (warnings != nullptr)
        *warnings << "warning: checkpoint " << path << ": ignoring stale "
                  << "record for index " << rec.index
                  << " (fingerprint does not match the current fleet)\n";
      continue;
    }
    (*out)[index] = rec;  // duplicates: last occurrence wins
  }
}

}  // namespace

ShardPlan plan_shards(const std::vector<BuiltScenario>& fleet,
                      std::size_t num_shards) {
  NAHSP_REQUIRE(num_shards >= 1, "num_shards must be >= 1");
  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.fingerprints.reserve(fleet.size());
  plan.shard_of_item.reserve(fleet.size());
  plan.items_of_shard.resize(num_shards);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    plan.fingerprints.push_back(scenario_fingerprint(fleet[i]));
    const std::size_t s = shard_of(plan.fingerprints.back(), num_shards);
    plan.shard_of_item.push_back(s);
    plan.items_of_shard[s].push_back(i);
  }
  return plan;
}

ShardRunResult run_shard(const std::vector<BuiltScenario>& fleet,
                         const ShardRunOptions& opts) {
  NAHSP_REQUIRE(opts.num_shards >= 1, "num_shards must be >= 1");
  NAHSP_REQUIRE(opts.shard < opts.num_shards,
                "shard index out of range for num_shards");
  NAHSP_REQUIRE(!opts.checkpoint_dir.empty(),
                "run_shard needs a checkpoint directory");
  const ShardPlan plan = plan_shards(fleet, opts.num_shards);
  const std::string path = join_path(
      opts.checkpoint_dir,
      shard_checkpoint_filename(opts.shard, opts.num_shards));

  // Reload before running: successful records are reused, everything
  // else (missing, failed, torn) re-runs.
  std::unordered_map<std::size_t, CheckpointRecord> have;
  fold_records(load_checkpoint_file(path, opts.log), plan.fingerprints,
               path, opts.log, &have);

  ShardRunResult result;
  std::vector<std::size_t> to_run;  // global fleet indices, ascending
  for (const std::size_t g : plan.items_of_shard[opts.shard]) {
    const auto it = have.find(g);
    if (it != have.end() && it->second.success) {
      ++result.reused;
      continue;
    }
    if (opts.stop_after > 0 && to_run.size() >= opts.stop_after) continue;
    to_run.push_back(g);
  }
  if (to_run.empty()) return result;

  // The sub-batch: shard-local list, but every item keeps its GLOBAL
  // stream so results match the unsharded run bit for bit.
  BatchOptions bopts;
  bopts.threads = opts.threads;
  SplitRng streams(opts.base_seed);
  std::vector<bb::HspInstance> instances;
  instances.reserve(to_run.size());
  for (const std::size_t g : to_run) {
    instances.push_back(fleet[g].instance);
    bopts.per_instance.push_back(fleet[g].options);
    bopts.per_instance_rng.push_back(streams.stream(g));
  }

  JsonlWriter writer(path);
  std::mutex writer_mu;
  std::size_t crashes_armed = opts.crash_after;
  if (const char* env = std::getenv("NAHSP_CRASH_AFTER");
      env != nullptr && crashes_armed == 0) {
    const char* which = std::getenv("NAHSP_CRASH_SHARD");
    if (which == nullptr ||
        static_cast<std::size_t>(std::strtoull(which, nullptr, 10)) ==
            opts.shard)
      crashes_armed = std::strtoull(env, nullptr, 10);
  }
  std::size_t appended = 0;
  bopts.on_item = [&](std::size_t local, const BatchItemReport& item) {
    const std::size_t g = to_run[local];
    CheckpointRecord rec;
    rec.index = g;
    rec.fingerprint = plan.fingerprints[g];
    rec.success = item.success;
    if (item.success) {
      rec.method = static_cast<std::uint64_t>(item.solution.method);
      rec.generators = item.solution.generators;
      rec.verified = verify_same_subgroup(
          *fleet[g].instance.group, item.solution.generators,
          fleet[g].instance.planted_generators);
    }
    rec.error = item.error;
    rec.error_kind = item.error_kind;
    rec.queries = item.queries;
    rec.seconds = item.seconds;
    const std::string line = checkpoint_line(rec);
    std::lock_guard<std::mutex> lock(writer_mu);
    // A failed append (disk full, injected ckpt.append fault) is a
    // clean shed, not a crash: the item simply is not durable and
    // re-runs on resume. BatchOptions::on_item must never throw into
    // the solver's worker threads.
    try {
      writer.append(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "shard %zu: checkpoint append failed (%s); item %zu "
                   "not durable (will re-run on resume)\n",
                   opts.shard, e.what(), g);
      return;
    }
    ++appended;
    // Fault-injection hook: die the instant the k-th record is durable.
    // SIGKILL, not exit(): nothing may flush, unwind, or tidy up —
    // resume must cope with exactly what fsync made durable.
    if (crashes_armed > 0 && appended >= crashes_armed)
      (void)raise(SIGKILL);
  };

  const BatchReport sub = solve_hsp_batch(instances, bopts);
  result.ran = sub.items.size();
  return result;
}

MergedBatch merge_checkpoints(const std::vector<BuiltScenario>& fleet,
                              const ShardPlan& plan,
                              const std::string& checkpoint_dir,
                              std::ostream* warnings) {
  NAHSP_REQUIRE(plan.fingerprints.size() == fleet.size(),
                "shard plan does not cover the fleet");
  std::unordered_map<std::size_t, CheckpointRecord> have;
  for (std::size_t s = 0; s < plan.num_shards; ++s) {
    const std::string path = join_path(
        checkpoint_dir, shard_checkpoint_filename(s, plan.num_shards));
    fold_records(load_checkpoint_file(path, warnings), plan.fingerprints,
                 path, warnings, &have);
  }

  MergedBatch merged;
  merged.report.items.resize(fleet.size());
  merged.verified.assign(fleet.size(), false);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto it = have.find(i);
    if (it == have.end()) {
      merged.missing.push_back(i);
      continue;
    }
    const CheckpointRecord& rec = it->second;
    merged.report.items[i] = batch_item_from_record(rec);
    merged.verified[i] = rec.verified;
    if (rec.verified) ++merged.verified_count;
    if (rec.success) ++merged.report.solved;
    merged.report.total_queries.group_ops += rec.queries.group_ops;
    merged.report.total_queries.classical_queries +=
        rec.queries.classical_queries;
    merged.report.total_queries.quantum_queries +=
        rec.queries.quantum_queries;
    merged.report.total_queries.sim_basis_evals +=
        rec.queries.sim_basis_evals;
  }
  return merged;
}

void write_shard_manifest(const std::string& dir, const ShardManifest& m) {
  // Compact (single-line) so the JSONL writer's durable-append/fsync
  // discipline can be reused; the manifest is written once, at
  // directory creation.
  std::ostringstream os;
  JsonWriter w(os, JsonWriter::Style::kCompact);
  w.begin_object();
  w.field("schema", kManifestSchema);
  w.field("num_shards", static_cast<std::uint64_t>(m.num_shards));
  w.field("seed", m.base_seed);
  w.field("source", m.source);
  w.key("fleet");
  w.begin_array();
  for (const std::string& line : m.spec_lines) w.value(line);
  w.end_array();
  w.end_object();
  JsonlWriter writer(join_path(dir, "manifest.json"));
  writer.append(os.str());
}

ShardManifest load_shard_manifest(const std::string& dir) {
  const std::string path = join_path(dir, "manifest.json");
  const JsonlFile file = read_jsonl(path);
  std::string text;
  for (const std::string& line : file.lines) text += line + "\n";
  if (file.torn_tail) text += file.torn_text;
  if (text.empty())
    throw std::invalid_argument("shard manifest not found: " + path);
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const JsonParseError& e) {
    throw std::invalid_argument("shard manifest " + path + ": " + e.what());
  }
  const auto field = [&](const char* key) -> const JsonValue& {
    const JsonValue* v = doc.find(key);
    if (v == nullptr)
      throw std::invalid_argument("shard manifest " + path +
                                  ": missing field '" + key + "'");
    return *v;
  };
  if (!doc.is_object() || !field("schema").is_string() ||
      field("schema").string_value != kManifestSchema)
    throw std::invalid_argument("shard manifest " + path +
                                ": schema tag is not '" +
                                std::string(kManifestSchema) + "'");
  ShardManifest m;
  m.num_shards = static_cast<std::size_t>(field("num_shards").as_u64());
  m.base_seed = field("seed").as_u64();
  if (!field("source").is_string())
    throw std::invalid_argument("shard manifest " + path +
                                ": 'source' must be a string");
  m.source = field("source").string_value;
  const JsonValue& fleet = field("fleet");
  if (!fleet.is_array())
    throw std::invalid_argument("shard manifest " + path +
                                ": 'fleet' must be an array");
  for (const JsonValue& line : fleet.array_items) {
    if (!line.is_string())
      throw std::invalid_argument("shard manifest " + path +
                                  ": fleet entries must be strings");
    m.spec_lines.push_back(line.string_value);
  }
  if (m.num_shards == 0)
    throw std::invalid_argument("shard manifest " + path +
                                ": num_shards must be >= 1");
  return m;
}

}  // namespace nahsp::hsp
