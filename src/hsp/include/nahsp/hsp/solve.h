// One-call front door: picks the applicable algorithm from the paper's
// toolbox based on cheap structural probes.
//
// Dispatch order (first applicable wins):
//   1. A known elementary Abelian normal 2-subgroup (generators supplied)
//      -> Theorem 13 (cyclic-factor route when the factor proves cyclic).
//   2. Commutator subgroup enumerable within `gprime_cap`
//      -> Theorem 11 (handles arbitrary hidden subgroups).
//   3. Otherwise assume the hidden subgroup is normal -> Theorem 8
//      (generators are label-verified; a non-normal hidden subgroup
//      surfaces as oracle_error / retry_exhausted, never a wrong answer).
#pragma once

#include <optional>

#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/normal.h"
#include "nahsp/hsp/small_commutator.h"

namespace nahsp::hsp {

enum class Method {
  kElemAbelian2,      // Theorem 13
  kSmallCommutator,   // Theorem 11
  kHiddenNormal,      // Theorem 8
};

const char* method_name(Method m);

struct AutoOptions {
  /// Generators of an elementary Abelian normal 2-subgroup, if known.
  std::optional<std::vector<grp::Code>> elem_abelian_2_subgroup;
  /// Enumeration budget for G' before Theorem 11 is abandoned.
  std::size_t gprime_cap = 1u << 12;
  /// Order bound forwarded to the quantum subroutines
  /// (0 = 2^encoding_bits).
  u64 order_bound = 0;
  /// Forwarded to the Theorem 13 options when route 1 is taken.
  ElemAbelian2Options elem_abelian_2_options;
};

struct HspSolution {
  std::vector<grp::Code> generators;
  Method method;
};

/// Solves the HSP for f on g with the first applicable paper algorithm.
HspSolution solve_hsp(const bb::BlackBoxGroup& g,
                      const bb::HidingFunction& f, Rng& rng,
                      const AutoOptions& opts = {});

}  // namespace nahsp::hsp
