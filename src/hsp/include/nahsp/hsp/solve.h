// One-call front door: picks the applicable algorithm from the paper's
// toolbox based on cheap structural probes, plus the multi-instance
// batch driver that fans independent instances across the thread pool.
//
// Dispatch order (first applicable wins):
//   1. A known elementary Abelian normal 2-subgroup (generators supplied)
//      -> Theorem 13 (cyclic-factor route when the factor proves cyclic).
//   2. Commutator subgroup enumerable within `gprime_cap`
//      -> Theorem 11 (handles arbitrary hidden subgroups).
//   3. Otherwise assume the hidden subgroup is normal -> Theorem 8
//      (generators are label-verified; a non-normal hidden subgroup
//      surfaces as oracle_error / retry_exhausted, never a wrong answer).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/cancel.h"
#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/normal.h"
#include "nahsp/hsp/small_commutator.h"

namespace nahsp::hsp {

/// \brief Which paper algorithm the dispatcher selected.
enum class Method {
  kElemAbelian2,      // Theorem 13
  kSmallCommutator,   // Theorem 11
  kHiddenNormal,      // Theorem 8
};

/// \brief Human-readable name ("theorem-N (...)") of a Method.
const char* method_name(Method m);

/// \brief Knobs for the automatic dispatcher.
struct AutoOptions {
  /// Generators of an elementary Abelian normal 2-subgroup, if known.
  std::optional<std::vector<grp::Code>> elem_abelian_2_subgroup;
  /// Enumeration budget for G' before Theorem 11 is abandoned.
  std::size_t gprime_cap = 1u << 12;
  /// Order bound forwarded to the quantum subroutines
  /// (0 = 2^encoding_bits).
  u64 order_bound = 0;
  /// Coset-sampler backend choice, forwarded to every quantum
  /// subroutine on every route (qs::make_coset_sampler).
  qs::SamplerChoice sampler;
  /// Forwarded to the Theorem 13 options when route 1 is taken.
  ElemAbelian2Options elem_abelian_2_options;
  /// Optional cancellation/timeout hook: solve_hsp installs the token
  /// for the duration of the call and every solver round loop polls it
  /// (cancel.h). Firing it makes the solve throw OperationCancelled at
  /// the next round boundary; arming a deadline on the token gives the
  /// solve a wall-clock budget. The `nahsp serve` daemon uses this for
  /// per-request timeouts and shutdown drains.
  std::shared_ptr<const CancelToken> cancel;
};

/// \brief Generators of the hidden subgroup plus the route that found
/// them.
struct HspSolution {
  std::vector<grp::Code> generators;
  Method method;
};

/// \brief Solves the HSP for f on g with the first applicable paper
/// algorithm.
/// \param g    Black-box group facade (counts every oracle call).
/// \param f    Function hiding the subgroup to recover.
/// \param rng  Randomness source; fixing the seed fixes the run.
/// \param opts Dispatcher knobs (structural hints, budgets).
HspSolution solve_hsp(const bb::BlackBoxGroup& g,
                      const bb::HidingFunction& f, Rng& rng,
                      const AutoOptions& opts = {});

// ---------------------------------------------------------------------
// Batch driver: many independent instances, one call.
// ---------------------------------------------------------------------

struct BatchItemReport;

/// \brief Options for solve_hsp_batch.
struct BatchOptions {
  /// Dispatcher options applied to every instance...
  AutoOptions solver;
  /// ...unless this is non-empty, in which case per_instance[i] applies
  /// to instances[i] (size must then match the instance count).
  std::vector<AutoOptions> per_instance;
  /// Base seed for the per-instance RNG streams. Instance i always
  /// receives SplitRng(base_seed).stream(i), so results are a function
  /// of (instances, options, base_seed) only — independent of thread
  /// count and scheduling order.
  std::uint64_t base_seed = 0x5eed0001ULL;
  /// When non-empty (size must match the instance count), instance i
  /// runs on a copy of per_instance_rng[i] and base_seed is ignored.
  /// This lets a caller that manages its own streams — the `nahsp
  /// serve` daemon derives one SplitRng stream per admitted request —
  /// keep every instance's randomness independent of how instances
  /// happen to be grouped into batches.
  std::vector<Rng> per_instance_rng;
  /// Instance-level fan-out width; 0 = the global pool
  /// (NAHSP_THREADS / set_parallelism). When a dedicated width is
  /// given, a private pool of that size is used for the fan-out.
  /// The nesting rule still applies: a batch issued from inside any
  /// pool task runs serially within that task (the width-1 path), so
  /// nested batches never oversubscribe the machine.
  int threads = 0;
  /// Optional streaming hook: called once per instance, immediately
  /// after its BatchItemReport is final (outcome, queries, seconds all
  /// set), with the instance's index into `instances`. Invoked from
  /// the worker thread that ran the instance — concurrent invocations
  /// are possible at width > 1, so the callback must synchronize its
  /// own state. It must not throw. The shard layer uses this to append
  /// each completed item to the fsync'd checkpoint file the moment it
  /// finishes, so a killed fleet loses at most the items in flight.
  std::function<void(std::size_t index, const BatchItemReport& item)>
      on_item;
};

/// \brief Outcome of one instance within a batch.
struct BatchItemReport {
  /// True iff the solver returned; false records the failure in `error`
  /// (oracle_error, retry_exhausted, ... — one bad instance never takes
  /// down the batch).
  bool success = false;
  /// Valid iff success.
  HspSolution solution{};
  /// Exception text iff !success.
  std::string error;
  /// Failure classification iff !success: "oracle_error",
  /// "retry_exhausted", "cancelled", "invalid_argument",
  /// "internal_error", or "exception" (anything else). Empty on
  /// success. Lets multi-tenant callers map failures to structured
  /// error codes without parsing `error` text.
  std::string error_kind;
  /// Snapshot of the instance's query counters after its run.
  bb::QueryCounter queries{};
  /// Wall-clock seconds this instance's solve took.
  double seconds = 0.0;
};

/// \brief Aggregate outcome of solve_hsp_batch.
struct BatchReport {
  /// Per-instance reports, in input order.
  std::vector<BatchItemReport> items;
  /// Number of items with success == true.
  std::size_t solved = 0;
  /// Sum of every instance's query counters (aggregated in input
  /// order).
  bb::QueryCounter total_queries{};
  /// Wall-clock seconds for the whole batch.
  double seconds = 0.0;
};

/// \brief Solves many independent HSP instances concurrently — the
/// multi-tenant entry point.
///
/// Instances fan out across the pool (one task per instance); inside a
/// task the simulator kernels run serially (the pool's nested-region
/// guard), so the batch applies exactly the configured width. Each
/// instance draws from its own SplitRng stream and writes only its own
/// QueryCounter, which makes the whole batch bit-reproducible at any
/// thread count.
///
/// Thread-safety contract: the entries of `instances` must not share
/// mutable state — each needs its own counter and hiding function
/// (bb::make_instance / bb::make_perm_instance give exactly that).
/// Solver failures are captured per item, never thrown.
BatchReport solve_hsp_batch(const std::vector<bb::HspInstance>& instances,
                            const BatchOptions& opts = {});

}  // namespace nahsp::hsp
