// Random planted-instance generator fleet: deterministic draws of HSP
// scenarios from a single u64 seed.
//
// Each draw function maps (gen_seed, shape parameters) to a concrete
// group, a planted hidden subgroup, and tuned dispatcher options —
// nothing else feeds the construction, so a failing instance reproduces
// from the one seed printed in its report. The draws are exposed through
// the scenario registry as the spec-driven families `random_abelian`,
// `random_normal`, `tower`, and `adversarial`, which makes them
// reachable from `nahsp solve/batch`, the golden reports, the fuzz
// suite, and the property-based test framework alike.
//
// Determinism contract (same as the hand-built families): the solver's
// Rng is the only randomness at solve time; the generator's internal Rng
// is seeded purely from `gen_seed` and consumed in a fixed draw order,
// so (family, params) -> instance is a pure function.
#pragma once

#include "nahsp/hsp/scenario.h"

namespace nahsp::hsp {

/// \brief One generator draw: group + planted subgroup + solver options.
///
/// `perm_group` is non-null when the draw wants a PermCosetHider
/// (Schreier–Sims coset labels) instead of an EnumerationHider; it then
/// aliases `group`.
struct GeneratedScenario {
  std::shared_ptr<const grp::Group> group;
  std::shared_ptr<const grp::PermutationGroup> perm_group;
  std::vector<grp::Code> hidden;  ///< planted subgroup generators
  AutoOptions options;            ///< dispatcher knobs tuned to the draw
};

/// \brief Random Abelian group by invariant factors d_1 | d_2 | ... with
/// product <= max_order, plus `hidden` random planted generators.
/// \param gen_seed   Sole randomness source of the construction.
/// \param max_order  Cap on |G| (and hence on the group exponent).
/// \param factors    Maximum number of invariant factors (>= 1).
/// \param hidden     Number of random planted-generator draws.
GeneratedScenario draw_random_abelian(u64 gen_seed, u64 max_order,
                                      u64 factors, u64 hidden);

/// \brief Random normal subgroup of a built non-Abelian family, solved
/// through the Theorem 8 route (gprime_cap = 1).
/// \param gen_seed Sole randomness source of the construction.
/// \param base     0 = dihedral, 1 = quaternion, 2 = Heisenberg,
///                 3 = symmetric (Schreier–Sims coset labels).
/// \param size     Scale knob for the drawn group order.
/// \param picks    Number of random elements whose normal closure is
///                 planted (0 plants the trivial subgroup).
GeneratedScenario draw_random_normal(u64 gen_seed, u64 base, u64 size,
                                     u64 picks);

/// \brief Composite towers: iterated wreath products (shape 0, Theorem 8
/// on the Sylow 2-subgroup of S_{2^depth}) or random GF(2) semidirect
/// products Z_2^k x| Z_m with a random invertible action (shape 1,
/// Theorem 13 cyclic-factor route).
/// \param gen_seed Sole randomness source of the construction.
/// \param depth    Wreath iteration depth (shape 0; |G| = 2^(2^depth-1)).
/// \param shape    0 = iterated wreath, 1 = random GF(2) semidirect.
/// \param k        Dimension of N = Z_2^k (shape 1).
/// \param picks    Random planted-generator draws (shape 0 takes the
///                 normal closure; shape 1 plants them as-is).
GeneratedScenario draw_tower(u64 gen_seed, u64 depth, u64 shape, u64 k,
                             u64 picks);

/// \brief Adversarial near-miss modes for the `adversarial` family.
enum class AdversaryMode : u64 {
  kTrivial = 0,      ///< degenerate |H| = 1, honest oracle (solvable)
  kFull = 1,         ///< degenerate |H| = |G|, honest oracle (solvable)
  kNonHiding = 2,    ///< pseudo-random small-range labels: f hides nothing
  kAlmostHidden = 3  ///< honest hider corrupted at `corrupt` points
};

/// \brief Builds an adversarial instance plus its dispatcher options.
///
/// Modes 0/1 are the degenerate-but-honest endpoints and must solve;
/// modes 2/3 break the hiding promise so the solver's oracle checks
/// (Schreier coset-constancy, sparse structural hiding checks, final
/// generator label verification) surface `oracle_error` instead of a
/// wrong answer. `abelian` = 1 swaps the dihedral substrate for Z_n,
/// which drives the corrupted labels through the Fourier-sampling
/// pipeline (the sparse backend then rejects at sampler build).
struct AdversarialScenario {
  bb::HspInstance instance;
  AutoOptions options;
};
AdversarialScenario make_adversarial(AdversaryMode mode, u64 n, u64 corrupt,
                                     u64 gen_seed, bool abelian);

/// \brief The generator-backed scenario families (`random_abelian`,
/// `random_normal`, `tower`, `adversarial`), ready for registration.
std::vector<ScenarioFamily> generator_scenario_families();

}  // namespace nahsp::hsp
