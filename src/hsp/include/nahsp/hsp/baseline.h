// Classical baselines and the Ettinger–Høyer dihedral sampler.
//
// These reproduce the paper's framing:
//  - classically the HSP costs time polynomial in |G| (enumerate and
//    filter by f), not in log|G| — the gap every experiment reports;
//  - Ettinger–Høyer solve the dihedral HSP with only O(log|G|) quantum
//    queries but exponential classical post-processing (paper
//    Introduction); dihedral_ettinger_hoyer reproduces exactly that
//    shape: few samples, then a linear-in-n likelihood scan over all
//    candidate reflection subgroups.
#pragma once

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/dihedral.h"

namespace nahsp::hsp {

using u64 = std::uint64_t;

/// Brute-force classical HSP: enumerates G (cap-bounded), keeps
/// {x : f(x) = f(1)} = H, and greedily reduces to a small generating
/// set. Costs |G| classical queries and |G| log|H|-ish group ops.
std::vector<grp::Code> classical_bruteforce_hsp(
    const bb::BlackBoxGroup& g, const bb::HidingFunction& f,
    std::size_t cap = 1u << 22);

struct EttingerHoyerResult {
  /// Found hidden subgroup generators (of D_n).
  std::vector<grp::Code> generators;
  int quantum_samples = 0;
  /// Candidate slopes scanned classically (the exponential part).
  u64 candidates_scanned = 0;
};

/// Ettinger–Høyer-style algorithm for the dihedral HSP with a hidden
/// reflection subgroup H = {1, x^d y}: draws O(log n) samples from the
/// exact quantum measurement distribution P(k) ∝ cos^2(pi k d / n), then
/// scans all n candidate slopes for the maximum-likelihood d. Quantum
/// query count is logarithmic; post-processing time is linear in n
/// (exponential in the input size log n).
EttingerHoyerResult dihedral_ettinger_hoyer(
    const grp::DihedralGroup& d, const bb::HidingFunction& f, Rng& rng,
    int samples = 0 /* 0 = auto: 8 * ceil(log2 n) + 16 */);

}  // namespace nahsp::hsp
