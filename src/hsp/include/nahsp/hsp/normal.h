// Hidden normal subgroup (paper Theorem 8).
//
// Given a black-box group G and a function f hiding a *normal* subgroup
// N, find generators for N — with no Fourier transform on G required.
// Strategy, following the paper:
//   1. f's labels are a secondary encoding of G/N (Theorem 7): orders and
//      constructive membership in G/N come from the quantum subroutines
//      parameterised by label = f.
//   2. Build a presentation of G/N and substitute the relators:
//      - Abelian factor: relation-lattice + commutator relators, then
//        the normal closure of the substituted relators is N;
//      - general factor of feasible size: Schreier generators from a BFS
//        coset transversal generate N directly (poly in |G/N|, matching
//        nu(G/N)-style bounds for our instance families).
//   3. Las Vegas verification: every produced generator must satisfy
//      f(n) == f(1).
#pragma once

#include "nahsp/bbox/hiding.h"
#include "nahsp/hsp/presentation.h"

namespace nahsp::hsp {

struct NormalHspOptions {
  /// Upper bound for element orders in G/N (0 = 2^encoding_bits).
  u64 order_bound = 0;
  /// Cap on |G/N| for the Schreier (non-Abelian-factor) route.
  std::size_t factor_cap = 1u << 14;
  /// Cap used by the normal-closure enumeration.
  std::size_t closure_cap = 1u << 22;
  int max_attempts = 8;
  /// Coset-sampler backend for the quantum subroutines.
  qs::SamplerChoice sampler;
};

struct NormalHspResult {
  std::vector<grp::Code> generators;  // of N
  bool abelian_factor = false;        // which route was taken
};

/// Finds generators of the hidden normal subgroup N defined by f.
NormalHspResult find_hidden_normal_subgroup(const bb::BlackBoxGroup& g,
                                            const bb::HidingFunction& f,
                                            Rng& rng,
                                            const NormalHspOptions& opts = {});

}  // namespace nahsp::hsp
