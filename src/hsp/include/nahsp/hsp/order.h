// Quantum order finding.
//
// Two paper-relevant variants, both parameterised by a label function so
// they work with the primary encoding (labels = element codes; Theorem 6)
// or a secondary encoding (labels = f-values / coset labels; Theorems 7
// and 10):
//
//  - find_order_shor: Shor's algorithm proper. Domain Z_{2^t} with
//    2^t >= bound^2, gate-level or mixed-radix circuit, continued-fraction
//    post-processing, lcm-combination across rounds, then minimisation to
//    the exact order. Needs only an upper bound on the order.
//  - find_order_via_multiple: when a multiple m of the order is known
//    (paper Theorem 10: "we can take m as the order of g in G"), period
//    finding over Z_m via the Abelian HSP machinery directly.
#pragma once

#include <functional>

#include "nahsp/bbox/blackbox.h"
#include "nahsp/qsim/sampler.h"

namespace nahsp::hsp {

using u64 = std::uint64_t;

// Backend selection is qs::SamplerBackend (qsim/sampler.h) — the old
// hsp-local Backend enum is gone; every routine below takes a
// qs::SamplerChoice and builds its sampler via qs::make_coset_sampler.

struct ShorOptions {
  /// Domain bits; 0 = auto from the order bound (2^t >= bound^2).
  int t_bits = 0;
  /// Retry budget (each round is one circuit run).
  int max_rounds = 64;
  /// Gate-level qubit circuit instead of mixed-radix (small t only).
  /// Shorthand for sampler.backend = kQubit; honoured only while
  /// sampler.backend is kAuto.
  bool use_qubit_circuit = false;
  /// Approximate-QFT cutoff for the qubit circuit (0 = exact).
  int approx_cutoff = 0;
  /// Coset-sampler backend choice for the period-finding domain.
  qs::SamplerChoice sampler;
};

/// Order of the element whose powers are labelled by `power_label`
/// (power_label(k) must equal label(g^k); labels collide exactly for
/// equal cosets). `order_bound` is any upper bound on the order.
/// `verify(r)` must return true iff g^r is the (encoded) identity.
u64 find_order_shor(const std::function<u64(u64)>& power_label,
                    const std::function<bool(u64)>& verify, u64 order_bound,
                    Rng& rng, bb::QueryCounter* counter,
                    const ShorOptions& opts = {});

/// Convenience wrapper for unique encodings: order of x in G, labels are
/// the element codes themselves.
u64 find_order_shor(const bb::BlackBoxGroup& g, grp::Code x, u64 order_bound,
                    Rng& rng, const ShorOptions& opts = {});

/// Period finding over Z_m when m is a known multiple of the order
/// (Theorem 10 route). Requires only O(log m) circuit runs; the hidden
/// subgroup of Z_m is <order>, recovered by the Abelian HSP solver.
u64 find_order_via_multiple(u64 m, const std::function<u64(u64)>& power_label,
                            Rng& rng, bb::QueryCounter* counter);

struct FactorOrderOptions {
  /// Upper bound on the order of x modulo N (0 = 2^encoding_bits).
  u64 order_bound = 0;
  /// Enumeration cap for N (the default coset labelling enumerates N).
  std::size_t n_enum_cap = 1u << 20;
  /// Optional fast coset-label oracle (label(a) == label(b) iff aN == bN);
  /// replaces the enumeration-based default.
  std::function<u64(grp::Code)> coset_label;
  /// Coset-sampler backend for the period-finding domain.
  qs::SamplerChoice sampler;
};

/// Theorem 10: the order of x in G/N, where the normal subgroup N is
/// given by generators and the encoding of G is unique. The paper runs
/// period finding against the quantum states |x^k N> (Watrous's uniform
/// subgroup superpositions); distinct cosets give exactly orthogonal
/// states, so the simulator realises them as canonical coset labels —
/// a unitary relabelling of the ancilla with identical measurement
/// statistics (see DESIGN.md substitutions).
u64 find_factor_order(const bb::BlackBoxGroup& g,
                      const std::vector<grp::Code>& n_gens, grp::Code x,
                      Rng& rng, const FactorOrderOptions& opts = {});

}  // namespace nahsp::hsp
