// Constructive membership testing in Abelian subgroups (paper Theorems
// 6, 7 and 10).
//
// Given pairwise-commuting (modulo the encoding) elements h_1, ..., h_r
// and a target g, either express g as a product of powers of the h_i or
// report that no such expression exists. The reduction (proof of
// Theorem 6) forms the homomorphism
//   phi(a_1, .., a_r, a) = h_1^{a_1} ... h_r^{a_r} g^{-a}
// from Z_{s1} x ... x Z_{sr} x Z_s into G and finds its kernel with the
// Abelian HSP solver; g is representable iff the kernel contains an
// element whose last coordinate is a unit mod s, and the Bezout
// combination of kernel generators produces the exponents.
//
// The label function parameterises the encoding: element codes (unique
// encoding, Theorem 6), f-values (hidden normal subgroup, Theorem 7), or
// coset labels of a solvable normal subgroup (Theorem 10).
#pragma once

#include <functional>
#include <optional>

#include "nahsp/bbox/blackbox.h"
#include "nahsp/qsim/sampler.h"

namespace nahsp::hsp {

using u64 = std::uint64_t;

struct MembershipOptions {
  /// Retries of the whole procedure (each re-runs the HSP solve).
  int max_attempts = 8;
  /// Upper bound used by order finding on the h_i and g; 0 = use
  /// 2^encoding_bits (may be simulator-infeasible for wide encodings —
  /// prefer passing the instance's known bound).
  u64 order_bound = 0;
  /// Coset-sampler backend for the kernel HSP solve and order finding.
  qs::SamplerChoice sampler;
};

struct MembershipResult {
  bool representable = false;
  /// Exponents e_i with g == prod_i h_i^{e_i} (mod the encoding) when
  /// representable.
  std::vector<u64> exponents;
  /// Orders of h_1..h_r and g (in the encoded group) as computed.
  std::vector<u64> orders;
};

/// Constructive membership of `g` in <h_1, ..., h_r>, all commuting in
/// the encoding defined by `label` (label(x) == label(y) iff x and y
/// encode the same element). Orders are found with find_order_shor over
/// the same label function.
MembershipResult constructive_membership(
    const bb::BlackBoxGroup& g_oracle, const std::vector<grp::Code>& hs,
    grp::Code g, const std::function<u64(grp::Code)>& label, Rng& rng,
    const MembershipOptions& opts = {});

/// Unique-encoding convenience overload (labels = codes), Theorem 6.
MembershipResult constructive_membership(const bb::BlackBoxGroup& g_oracle,
                                         const std::vector<grp::Code>& hs,
                                         grp::Code g, Rng& rng,
                                         const MembershipOptions& opts = {});

}  // namespace nahsp::hsp
