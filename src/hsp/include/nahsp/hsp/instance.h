// Result verification and instance utilities shared by tests, examples
// and benchmarks.
#pragma once

#include "nahsp/bbox/hiding.h"

namespace nahsp::hsp {

/// True iff <found> and <planted> generate the same subgroup of g
/// (mutual enumeration; cap-bounded).
bool verify_same_subgroup(const grp::Group& g,
                          const std::vector<grp::Code>& found,
                          const std::vector<grp::Code>& planted,
                          std::size_t cap = 1u << 22);

/// Validates the hiding promise on the full group (test-sized groups
/// only): f is constant exactly on the left cosets of <planted>.
bool validate_hiding_promise(const grp::Group& g,
                             const bb::HidingFunction& f,
                             const std::vector<grp::Code>& planted,
                             std::size_t cap = 1u << 18);

}  // namespace nahsp::hsp
