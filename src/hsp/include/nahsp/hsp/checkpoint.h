// Per-item batch checkpoints: the durable record stream behind
// `nahsp batch --shards` and `--resume`.
//
// Every completed fleet item (success or completed failure) becomes
// one compact-JSON line in an append-only per-shard file
// (common/jsonl.h provides the fsync-per-record durability contract).
// A record carries everything needed to rebuild its BatchItemReport
// byte-identically in a merged report — outcome, method, error
// taxonomy, generators, query counters, wall-clock seconds — plus the
// item's fleet index and instance fingerprint, so a reload can prove
// the record still describes the fleet it is matched against.
//
// Reload tolerance: a process killed mid-append leaves at most one
// torn final line; the loader skips it with a warning (the item just
// re-runs). A record for the same index appearing twice (a re-run
// after a crash landed mid-fleet) resolves to the LAST occurrence.
// A malformed line anywhere *before* the tail is real corruption and
// aborts the reload with a diagnostic naming the line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nahsp/hsp/solve.h"

namespace nahsp::hsp {

/// \brief One checkpointed fleet item (schema nahsp-checkpoint/v1).
struct CheckpointRecord {
  std::uint64_t index = 0;   ///< item's index into the full fleet
  std::string fingerprint;   ///< hsp::scenario_fingerprint of the item
  bool success = false;
  /// Valid iff success (Method enum value); stored numerically so the
  /// record round-trips without string matching.
  std::uint64_t method = 0;
  std::string error;       ///< exception text iff !success
  std::string error_kind;  ///< batch failure taxonomy iff !success
  bool verified = false;   ///< solution matches the planted subgroup
  std::vector<grp::Code> generators;  ///< iff success
  bb::QueryCounter queries{};
  double seconds = 0.0;
};

/// \brief Serializes a record as one compact JSON line (no newline).
std::string checkpoint_line(const CheckpointRecord& rec);

/// \brief Parses one checkpoint line. Throws std::invalid_argument on
/// anything malformed (bad JSON, wrong schema tag, missing fields).
CheckpointRecord parse_checkpoint_line(std::string_view line);

/// \brief One loaded shard checkpoint file.
struct ShardCheckpoint {
  std::vector<CheckpointRecord> records;  ///< file order, duplicates kept
  bool skipped_torn_tail = false;
};

/// \brief Loads a shard checkpoint file (absent file = no records).
/// A torn final line is skipped with a warning on `warnings` (when
/// non-null); a malformed non-final line throws std::invalid_argument.
ShardCheckpoint load_checkpoint_file(const std::string& path,
                                     std::ostream* warnings);

/// \brief Canonical per-shard checkpoint filename within a checkpoint
/// directory: "shard-<shard>-of-<num_shards>.jsonl".
std::string shard_checkpoint_filename(std::size_t shard,
                                      std::size_t num_shards);

/// \brief Rebuilds the batch item a record checkpointed.
BatchItemReport batch_item_from_record(const CheckpointRecord& rec);

}  // namespace nahsp::hsp
