// The scenario registry: every named HSP workload the repo knows how to
// construct, in one place.
//
// A scenario family is a parameterised factory (string key -> planted
// black-box instance + dispatcher options) plus the metadata the CLI,
// tests, and docs render: a one-line summary, the paper theorem the
// family exercises, and a declared parameter table with defaults,
// ranges, and per-key documentation. Examples, benches, the `nahsp`
// driver, and the CI smoke suite all build their instances through
// `build_scenario`, so adding a family here makes it available
// everywhere at once (see docs/ARCHITECTURE.md, "A new scenario").
//
// Construction is deterministic: a (family, parameters) pair always
// yields the same group, the same planted subgroup, and the same
// options — randomness enters only through the Rng handed to the
// solver, which is what makes pinned-seed golden reports possible.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nahsp/common/spec.h"
#include "nahsp/hsp/solve.h"

namespace nahsp::hsp {

/// \brief One declared parameter of a scenario family.
struct ScenarioParam {
  std::string key;   ///< spec key, e.g. "n"
  u64 def = 0;       ///< value used when the spec omits the key
  u64 min = 0;       ///< inclusive lower bound (spec-checked)
  u64 max = 0;       ///< inclusive upper bound (spec-checked)
  std::string doc;   ///< one-line description rendered by `nahsp describe`
};

/// \brief A fully constructed scenario: planted instance + dispatcher
/// options + the metadata a report needs.
struct BuiltScenario {
  std::string family;      ///< registry key this was built from
  std::string group_name;  ///< e.g. "D_12"
  u64 group_order = 0;
  /// Resolved parameter values in declaration order (defaults filled
  /// in), so reports show exactly what was run.
  std::vector<std::pair<std::string, u64>> params;
  bb::HspInstance instance;  ///< black box + hiding f + planted truth
  AutoOptions options;       ///< dispatcher knobs tuned for the family
};

/// \brief A registered scenario family: metadata + factory.
struct ScenarioFamily {
  std::string name;     ///< registry key, e.g. "wreath"
  std::string summary;  ///< one-line description for `nahsp list`
  std::string theorem;  ///< paper result exercised, e.g. "Theorem 13"
  std::vector<ScenarioParam> params;  ///< declared keys (defaults/ranges)
  /// Builds the scenario, consuming its keys from the spec map.
  std::function<BuiltScenario(SpecMap&)> build;
};

/// \brief All registered families, sorted by name. The registry is
/// immutable and built on first use.
const std::vector<ScenarioFamily>& scenario_registry();

/// \brief Looks up a family by name; nullptr when absent.
const ScenarioFamily* find_scenario_family(std::string_view name);

/// \brief Looks up a family by name; throws std::invalid_argument
/// listing the registered names when absent.
const ScenarioFamily& scenario_family_or_throw(const std::string& name);

/// \brief Builds a scenario from a parsed spec: resolves the family,
/// applies parameter overrides (range-checked), applies the common
/// solver keys (`gprime_cap`, `order_bound`), and rejects any unknown
/// key with a diagnostic listing the accepted ones.
BuiltScenario build_scenario(const ScenarioSpec& spec);

/// \brief Convenience overload: parses `spec_text` as one spec line
/// ("family key=value ...") and builds it.
BuiltScenario build_scenario(const std::string& spec_text);

/// \brief Canonical instance fingerprint: family + resolved params (in
/// declaration order) + sampler backend + dispatcher budgets — the
/// seed excluded. Construction is deterministic, so equal fingerprints
/// name equal planted instances. Keys both the `nahsp serve` LRU cache
/// and the shard layer's stable work partition (common/fingerprint.h);
/// checkpoint records carry it so a reload can prove a record still
/// describes the fleet item it is matched to.
std::string scenario_fingerprint(const BuiltScenario& built);

/// \brief Prices the peak coset-sampler footprint of a built scenario
/// against the global ResourceBudget LIMIT (qs::plan_sampler), taking
/// the full group order as the sampler domain — an upper bound, since
/// the solver routes sample over subgroups and quotients of it. The
/// returned plan is what admission control acts on: shed when
/// `over_budget`, otherwise `estimated_bytes` is the price to ledger.
/// Deterministic: depends only on the scenario and the budget limit.
qs::SamplerPlan estimate_scenario_bytes(const BuiltScenario& built);

}  // namespace nahsp::hsp
