// HSP in groups with an elementary Abelian normal 2-subgroup
// (paper Theorem 13, covering the Rötteler–Beth wreath products).
//
// Input: G black-box with unique encoding, generators n_1..n_m of a
// normal subgroup N ~= Z_2^k, and f hiding H <= G. Two regimes:
//   - general: polynomial in input + |G/N| (BFS coset representatives);
//   - cyclic G/N: fully polynomial (coset representatives come from
//     Sylow generators of the cyclic factor, |V| = O(log |G/N|)).
//
// Core loop (both regimes): for every representative z != 1, the
// function F(i, x) = f(x z^i) on Z_2 x N hides either
// {0} x (H ∩ N) or its extension by (1, u) with u z in H; an Abelian HSP
// over Z_2^{m+1} recovers it and contributes the H-element u z for the
// coset zN. Together with H ∩ N (an Abelian HSP over N) these generate H.
#pragma once

#include <functional>
#include <optional>

#include "nahsp/bbox/hiding.h"
#include "nahsp/hsp/order.h"

namespace nahsp::hsp {

struct ElemAbelian2Options {
  /// Force the cyclic-factor route (otherwise chosen automatically when
  /// a coset-label function is available and the factor looks cyclic).
  bool assume_cyclic_factor = false;
  /// Optional fast membership oracle for N. When absent, membership is
  /// decided by the quantum constructive-membership test in the Abelian
  /// group N (elements of N have order <= 2, so the test is cheap).
  std::function<bool(grp::Code)> n_membership;
  /// Optional canonical label of the coset xN (needed by the cyclic
  /// route's order finding mod N; defaults to min-over-N enumeration,
  /// which is exponential in k — fine for tests, overridden in benches).
  std::function<u64(grp::Code)> coset_label;
  /// Cap on |G/N| for the general route.
  std::size_t factor_cap = 1u << 12;
  /// Cap for enumerating N when building the default coset label.
  std::size_t n_enum_cap = 1u << 20;
  /// Upper bound on |G/N| for order finding mod N (0 = 2^encoding_bits).
  u64 factor_order_bound = 0;
  /// Coset-sampler backend for the inner Abelian HSP solves.
  qs::SamplerChoice sampler;
};

struct ElemAbelian2Result {
  std::vector<grp::Code> generators;  // of H
  std::size_t coset_reps_used = 0;    // |V|
  bool cyclic_route = false;
};

/// Solves the HSP in G given generators of the elementary Abelian normal
/// 2-subgroup N.
ElemAbelian2Result solve_hsp_elem_abelian2(
    const bb::BlackBoxGroup& g, const std::vector<grp::Code>& n_gens,
    const bb::HidingFunction& f, Rng& rng,
    const ElemAbelian2Options& opts = {});

}  // namespace nahsp::hsp
