// Factor-group presentations realised through a label function — the
// slice of the Beals–Babai machinery (paper Theorem 4 / Corollary 5)
// that the paper's applications actually exercise.
//
// Both routines see G/N only through labels (label(x) == label(y) iff
// xN == yN) and return *substituted relators*: elements of G that lie in
// N and, together (via normal closure or Schreier's lemma), generate N.
//
//  - abelian_factor_relators: when G/N is Abelian, the relation lattice
//    of the generator images (kernel of phi(a) = label(prod g_i^{a_i}),
//    an Abelian HSP) plus the pairwise commutators give a presentation
//    of G/N on the original generators; substituting yields elements of
//    N whose normal closure is N (Theorem 8's argument with T = S, so
//    the S_0 correction set is empty).
//  - schreier_generators: for small G/N, BFS over the cosets builds a
//    transversal; Schreier's lemma turns (transversal, generator) pairs
//    into generators of N directly. Cost is polynomial in |G/N| — the
//    regime of Theorems 11 and 13.
#pragma once

#include <functional>

#include "nahsp/bbox/blackbox.h"
#include "nahsp/qsim/sampler.h"

namespace nahsp::hsp {

using u64 = std::uint64_t;

struct AbelianFactorOptions {
  /// Upper bound for element orders in G/N (0 = 2^encoding_bits).
  u64 order_bound = 0;
  /// Retries when a relator fails verification against the labels.
  int max_attempts = 8;
  /// Coset-sampler backend for the relation-lattice HSP solve.
  qs::SamplerChoice sampler;
};

/// True iff all generator pairs commute according to the labels
/// (i.e. G/N is Abelian as far as the generators show — which is exactly
/// Abelian, as the generators generate).
bool factor_group_is_abelian(const bb::BlackBoxGroup& g,
                             const std::function<u64(grp::Code)>& label);

/// Substituted relators for Abelian G/N. Every returned element lies in
/// N (label-verified) and their normal closure is N.
std::vector<grp::Code> abelian_factor_relators(
    const bb::BlackBoxGroup& g, const std::function<u64(grp::Code)>& label,
    Rng& rng, const AbelianFactorOptions& opts = {});

struct SchreierOptions {
  /// Cap on the number of cosets (|G/N|); exceeding it throws.
  std::size_t factor_cap = 1u << 14;
};

/// Schreier generators of N from a BFS coset transversal of G/N.
/// Polynomial in |G/N|; generates N itself (no closure step needed).
std::vector<grp::Code> schreier_generators(
    const bb::BlackBoxGroup& g, const std::function<u64(grp::Code)>& label,
    const SchreierOptions& opts = {});

}  // namespace nahsp::hsp
