// The shard layer over solve_hsp_batch: deterministic fleet
// partitioning, checkpointed shard execution, and checkpoint merging.
//
// A fleet (list of built scenarios) is partitioned by instance
// fingerprint — shard_of(scenario_fingerprint(item), N) — so the
// assignment is a pure function of each item, never of list order:
// adding or removing fleet lines does not reshuffle where existing
// work runs, which is what lets a checkpoint directory survive fleet
// edits. Each shard process runs only its slice, streaming every
// completed item to an append-only fsync'd checkpoint file
// (hsp/checkpoint.h), and a merge pass rebuilds the full BatchReport
// from the records — byte-identical to a single-process
// solve_hsp_batch run over the same fleet, because per-item results
// are a pure function of (instance, options, SplitRng(base_seed)
// stream(global index)) at any width.
//
// Resume semantics: a shard reuses checkpoint records for items that
// completed successfully (matching index AND fingerprint); missing and
// failed items re-run. A completed failure re-runs to the same result
// — generated failures are deterministic — so a resumed fleet's merged
// report equals the uninterrupted run's.
//
// The CLI (`nahsp batch --shards/--shard/--resume`) drives this layer;
// tests drive it in-process. Process spawning lives in the CLI, not
// here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nahsp/hsp/checkpoint.h"
#include "nahsp/hsp/scenario.h"

namespace nahsp::hsp {

/// \brief Deterministic fleet partition (see file comment).
struct ShardPlan {
  std::size_t num_shards = 1;
  std::vector<std::string> fingerprints;   ///< per fleet item
  std::vector<std::size_t> shard_of_item;  ///< per fleet item
  /// Global item indices per shard, ascending (possibly empty).
  std::vector<std::vector<std::size_t>> items_of_shard;
};

/// \brief Plans a fleet over `num_shards` shards (>= 1).
ShardPlan plan_shards(const std::vector<BuiltScenario>& fleet,
                      std::size_t num_shards);

/// \brief Options for run_shard.
struct ShardRunOptions {
  std::size_t shard = 0;       ///< this process's shard index
  std::size_t num_shards = 1;  ///< total shards (names the file)
  /// Batch base seed: item i always draws SplitRng(base_seed).stream(i)
  /// with i its GLOBAL fleet index, so shard runs are bit-identical to
  /// the corresponding items of an unsharded run.
  std::uint64_t base_seed = 0;
  /// Fan-out width within this shard (BatchOptions::threads).
  int threads = 0;
  std::string checkpoint_dir;  ///< must exist
  /// Test hook: run at most this many new items, then return (0 =
  /// unlimited). Lets tests exercise resume without killing a process.
  std::size_t stop_after = 0;
  /// Fault-injection hook (NAHSP_CRASH_AFTER): after this many new
  /// items have been checkpointed, SIGKILL the current process —
  /// records written so far are durable, nothing else is. 0 = off.
  std::size_t crash_after = 0;
  /// Warnings (stale/torn checkpoint diagnostics); nullptr = silent.
  std::ostream* log = nullptr;
};

/// \brief Outcome of one run_shard call.
struct ShardRunResult {
  std::size_t ran = 0;     ///< items newly executed this call
  std::size_t reused = 0;  ///< items skipped: checkpointed successes
};

/// \brief Runs this shard's slice of the fleet, streaming each
/// completed item to the shard's checkpoint file. Items with an
/// existing successful record (index + fingerprint match) are not
/// re-executed.
ShardRunResult run_shard(const std::vector<BuiltScenario>& fleet,
                         const ShardRunOptions& opts);

/// \brief A merged view over every shard's checkpoint records.
struct MergedBatch {
  /// Reconstructed report, items in fleet order; `seconds` of the
  /// report itself is left 0 (the caller owns wall-clock framing).
  BatchReport report;
  std::vector<bool> verified;       ///< per item, from the records
  std::size_t verified_count = 0;
  std::vector<std::size_t> missing; ///< fleet indices with no record
  bool complete() const { return missing.empty(); }
};

/// \brief Loads every shard checkpoint file under `checkpoint_dir` and
/// rebuilds the merged batch. Records whose fingerprint does not match
/// the fleet item at their index are stale (edited fleet) — ignored
/// with a warning. Duplicate records for an index resolve to the last
/// occurrence. Torn final lines are skipped with a warning.
MergedBatch merge_checkpoints(const std::vector<BuiltScenario>& fleet,
                              const ShardPlan& plan,
                              const std::string& checkpoint_dir,
                              std::ostream* warnings);

/// \brief The checkpoint directory's manifest (manifest.json): enough
/// to resume a fleet without the original .scn file and to refuse a
/// resume under a different seed or shard count.
struct ShardManifest {
  std::size_t num_shards = 1;
  std::uint64_t base_seed = 0;
  std::string source;  ///< original fleet path, for report framing
  /// Canonical spec lines (to_string(spec)), one per fleet item, in
  /// fleet order — scenario construction is deterministic, so these
  /// rebuild the exact fleet.
  std::vector<std::string> spec_lines;
};

/// \brief Writes `manifest.json` into `dir` (which must exist).
void write_shard_manifest(const std::string& dir, const ShardManifest& m);

/// \brief Loads `dir`/manifest.json; throws std::invalid_argument when
/// absent or malformed.
ShardManifest load_shard_manifest(const std::string& dir);

}  // namespace nahsp::hsp
