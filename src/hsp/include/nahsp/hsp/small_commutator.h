// HSP in groups with small commutator subgroup (paper Theorem 11) and
// its corollary for extra-special p-groups (Corollary 12).
//
// Algorithm (Theorem 11's proof):
//   1. Enumerate G' (polynomial in |G'|) and H ∩ G' = {x in G' :
//      f(x) = f(1)}.
//   2. The set-valued function F(x) = {f(xg) : g in G'} hides HG',
//      which is normal (G/G' Abelian); realise F with canonical
//      multiset labels.
//   3. Find generators of HG' via the hidden-normal-subgroup algorithm
//      (Abelian-factor route, since G/HG' is Abelian).
//   4. For each generator x of HG', scan the coset xG' for an element of
//      H (f-value equals f(1)); collect them.
//   5. H = < collected elements, H ∩ G' >.
#pragma once

#include "nahsp/bbox/hiding.h"
#include "nahsp/hsp/normal.h"

namespace nahsp::hsp {

struct SmallCommutatorOptions {
  /// Cap on |G'| (the theorem's running-time parameter).
  std::size_t gprime_cap = 1u << 18;
  u64 order_bound = 0;  // order bound in G/HG' (0 = 2^encoding_bits)
  int max_attempts = 8;
  std::size_t closure_cap = 1u << 22;
  /// Coset-sampler backend for the quantum subroutines.
  qs::SamplerChoice sampler;
};

struct SmallCommutatorResult {
  std::vector<grp::Code> generators;     // of H
  std::size_t gprime_order = 0;          // |G'| (enumerated)
  std::size_t h_cap_gprime_order = 0;    // |H ∩ G'|
};

/// Solves the HSP in G given f hiding an arbitrary subgroup H, in time
/// polynomial in input size + |G'|.
SmallCommutatorResult solve_hsp_small_commutator(
    const bb::BlackBoxGroup& g, const bb::HidingFunction& f, Rng& rng,
    const SmallCommutatorOptions& opts = {});

}  // namespace nahsp::hsp
