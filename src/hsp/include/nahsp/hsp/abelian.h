// The Abelian hidden subgroup solver (paper Theorem 3 / Lemma 9).
//
// Repeatedly runs the standard circuit through a CosetSampler to collect
// characters y uniform over H^perp, and decodes the joint annihilator
// H_Y via the congruence-kernel solver. H_Y always *contains* H and
// shrinks monotonically; sampling stops once the candidate has been
// stable for `stability_rounds` consecutive extra samples (plus an
// optional exact membership verification, making the procedure
// Las Vegas).
#pragma once

#include <functional>

#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/sampler.h"

namespace nahsp::hsp {

using la::AbVec;
using u64 = std::uint64_t;

struct AbelianHspOptions {
  /// Samples taken before the first decode; 0 = auto
  /// (sum of bits of the moduli + 8).
  int base_samples = 0;
  /// Consecutive non-shrinking extra samples required to accept.
  int stability_rounds = 6;
  /// Hard budget; exceeded => retry_exhausted.
  int max_samples = 4096;
  /// Optional exact membership oracle for candidate generators (e.g.
  /// "f(g) == f(0)"); when provided, acceptance additionally requires
  /// all candidate generators to pass, making the result certified.
  std::function<bool(const AbVec&)> membership_check;
};

struct AbelianHspResult {
  std::vector<AbVec> generators;  // of the hidden subgroup, componentwise
  int samples_used = 0;
  u64 subgroup_order = 0;
};

/// Solves the HSP over A = Z_{moduli[0]} x ... given a character source.
AbelianHspResult solve_abelian_hsp(qs::CosetSampler& sampler, Rng& rng,
                                   const AbelianHspOptions& opts = {});

}  // namespace nahsp::hsp
